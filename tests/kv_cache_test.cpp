// Tests for the paged KV-cache allocator.
#include <gtest/gtest.h>

#include "model/registry.h"
#include "runtime/kv_cache.h"

namespace sq::runtime {
namespace {

using sq::hw::Bitwidth;

class KvFixture : public ::testing::Test {
 protected:
  KvFixture() : m_(sq::model::spec(sq::model::ModelId::kOpt13B)) {}
  sq::model::LlmSpec m_;
};

TEST_F(KvFixture, BlockBytesMatchModelFormula) {
  const KvCacheAllocator kv(m_, 1ULL << 30, 10, Bitwidth::kFp16, 16);
  EXPECT_EQ(kv.block_bytes(), m_.layer_kv_bytes(16, Bitwidth::kFp16) * 10);
}

TEST_F(KvFixture, ReserveRoundsUpToBlocks) {
  const std::uint64_t budget = 100 * m_.layer_kv_bytes(16, Bitwidth::kFp16) * 10;
  KvCacheAllocator kv(m_, budget, 10, Bitwidth::kFp16, 16);
  EXPECT_TRUE(kv.reserve(1, 17));  // 2 blocks
  EXPECT_EQ(kv.blocks_of(1), 2u);
  EXPECT_TRUE(kv.reserve(1, 32));  // still 2 blocks
  EXPECT_EQ(kv.blocks_of(1), 2u);
  EXPECT_TRUE(kv.reserve(1, 33));  // grows to 3
  EXPECT_EQ(kv.blocks_of(1), 3u);
}

TEST_F(KvFixture, BudgetEnforced) {
  const std::uint64_t budget = 4 * m_.layer_kv_bytes(16, Bitwidth::kFp16) * 10;
  KvCacheAllocator kv(m_, budget, 10, Bitwidth::kFp16, 16);
  EXPECT_TRUE(kv.reserve(1, 48));   // 3 blocks
  EXPECT_FALSE(kv.reserve(2, 32));  // needs 2, only 1 left -> refused
  EXPECT_EQ(kv.blocks_of(2), 0u);   // state unchanged
  EXPECT_TRUE(kv.reserve(2, 16));   // exactly fits
  EXPECT_EQ(kv.free_blocks(), 0u);
}

TEST_F(KvFixture, ReleaseReturnsBlocks) {
  const std::uint64_t budget = 4 * m_.layer_kv_bytes(16, Bitwidth::kFp16) * 10;
  KvCacheAllocator kv(m_, budget, 10, Bitwidth::kFp16, 16);
  ASSERT_TRUE(kv.reserve(1, 64));
  EXPECT_EQ(kv.free_blocks(), 0u);
  kv.release(1);
  EXPECT_EQ(kv.free_blocks(), 4u);
  kv.release(99);  // unknown request is a no-op
  EXPECT_EQ(kv.free_blocks(), 4u);
}

TEST_F(KvFixture, UtilizationTracksUsage) {
  const std::uint64_t budget = 10 * m_.layer_kv_bytes(16, Bitwidth::kFp16) * 5;
  KvCacheAllocator kv(m_, budget, 5, Bitwidth::kFp16, 16);
  EXPECT_DOUBLE_EQ(kv.utilization(), 0.0);
  ASSERT_TRUE(kv.reserve(1, 16 * 5));
  EXPECT_DOUBLE_EQ(kv.utilization(), 0.5);
}

TEST_F(KvFixture, QuantizedKvDoublesCapacity) {
  const std::uint64_t budget = 1ULL << 28;
  const KvCacheAllocator fp16(m_, budget, 10, Bitwidth::kFp16, 16);
  const KvCacheAllocator int8(m_, budget, 10, Bitwidth::kInt8, 16);
  EXPECT_NEAR(static_cast<double>(int8.free_blocks()) /
                  static_cast<double>(fp16.free_blocks()),
              2.0, 0.02);
}

TEST_F(KvFixture, ZeroLayerAllocatorIsInert) {
  const KvCacheAllocator kv(m_, 1ULL << 30, 0, Bitwidth::kFp16, 16);
  EXPECT_EQ(kv.block_bytes(), 0u);
  EXPECT_EQ(kv.free_blocks(), 0u);
  EXPECT_DOUBLE_EQ(kv.utilization(), 1.0);  // nothing available
}

}  // namespace
}  // namespace sq::runtime
