// Tests for the analytic memory cost model and its fidelity against the
// "real engine" accounting (the Fig. 8 left-panel property).
#include <gtest/gtest.h>

#include "cost/memory_model.h"
#include "hw/paper_clusters.h"
#include "model/registry.h"
#include "sim/memory.h"

namespace sq::cost {
namespace {

using sq::hw::Bitwidth;

TEST(MemoryCostModel, StageBytesComposition) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  const MemoryCostModel mm(m);
  const std::vector<Bitwidth> bits(10, Bitwidth::kInt8);
  const auto total = mm.stage_bytes(bits, 8, 600, 4, 8, 512, Bitwidth::kFp16, 1, false);
  const auto weights = 10 * mm.layer_weight_bytes(Bitwidth::kInt8);
  const auto kv = 10 * mm.layer_kv_bytes(8, 600, Bitwidth::kFp16);
  EXPECT_GT(total, weights + kv);  // + activations
  EXPECT_LT(total, weights + kv + (1ULL << 31));
}

TEST(MemoryCostModel, MasterAddsEmbeddings) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  const MemoryCostModel mm(m);
  const std::vector<Bitwidth> bits(10, Bitwidth::kInt8);
  const auto worker = mm.stage_bytes(bits, 8, 600, 4, 8, 512, Bitwidth::kFp16, 1, false);
  const auto master = mm.stage_bytes(bits, 8, 600, 4, 8, 512, Bitwidth::kFp16, 1, true);
  EXPECT_EQ(master - worker, mm.embedding_bytes());
}

TEST(MemoryCostModel, TpDividesSharedState) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt30B);
  const MemoryCostModel mm(m);
  const std::vector<Bitwidth> bits(12, Bitwidth::kFp16);
  const auto tp1 = mm.stage_bytes(bits, 8, 600, 4, 8, 512, Bitwidth::kFp16, 1, false);
  const auto tp4 = mm.stage_bytes(bits, 8, 600, 4, 8, 512, Bitwidth::kFp16, 4, false);
  EXPECT_NEAR(static_cast<double>(tp1) / static_cast<double>(tp4), 4.0, 0.05);
}

TEST(MemoryCostModel, Fig8FidelityAgainstRealAccounting) {
  // The paper reports near-zero memory model error; ours differs only by
  // the engine's paged-KV rounding, so the relative error must be < 2%.
  const auto cluster = sq::hw::paper_cluster(9);
  for (const auto id :
       {sq::model::ModelId::kBloom560M, sq::model::ModelId::kBloom1B7,
        sq::model::ModelId::kOpt13B, sq::model::ModelId::kOpt30B}) {
    const auto m = sq::model::spec(id);
    const MemoryCostModel mm(m);
    sq::sim::ExecutionPlan plan;
    const int half = m.n_layers / 2;
    plan.stages.push_back({{0}, 0, half});
    plan.stages.push_back({{1}, half, m.n_layers});
    plan.layer_bits.assign(static_cast<std::size_t>(m.n_layers), Bitwidth::kInt8);
    for (int l = 0; l < m.n_layers; l += 3) {
      plan.layer_bits[static_cast<std::size_t>(l)] = Bitwidth::kInt4;
    }
    plan.prefill_microbatch = 4;
    plan.decode_microbatch = 8;
    sq::sim::BatchWorkload w{8, 391, 117, 2048};  // deliberately unaligned
    const auto predicted = mm.plan_bytes(plan, w);
    const auto real = sq::sim::plan_memory(cluster, m, plan, w);
    ASSERT_EQ(predicted.size(), real.devices.size());
    for (std::size_t d = 0; d < predicted.size(); ++d) {
      const double rel =
          std::abs(static_cast<double>(predicted[d]) -
                   static_cast<double>(real.devices[d].total())) /
          static_cast<double>(real.devices[d].total());
      EXPECT_LT(rel, 0.02) << m.name << " device " << d;
      EXPECT_GT(rel, 0.0) << "paged rounding should produce a tiny gap";
    }
  }
}

TEST(MemoryCostModel, PlanBytesOrderFollowsStages) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  const MemoryCostModel mm(m);
  sq::sim::ExecutionPlan plan;
  plan.stages.push_back({{2}, 0, 30});   // heavier stage first
  plan.stages.push_back({{0}, 30, 40});
  plan.layer_bits.assign(40, Bitwidth::kInt8);
  sq::sim::BatchWorkload w{8, 512, 32, 2048};
  const auto bytes = mm.plan_bytes(plan, w);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_GT(bytes[0], bytes[1]);
}

}  // namespace
}  // namespace sq::cost
