// Tests for the synthetic per-layer calibration profiles and the derived
// variance-indicator tables (the Table I depth trend).
#include <gtest/gtest.h>

#include "model/layer_stats.h"
#include "model/registry.h"

namespace sq::model {
namespace {

using sq::hw::Bitwidth;

constexpr Bitwidth kBits[] = {Bitwidth::kFp16, Bitwidth::kInt8, Bitwidth::kInt4,
                              Bitwidth::kInt3};

TEST(SyntheticCalibration, OneEntryPerLayerAndOperator) {
  const LlmSpec m = spec(ModelId::kOpt1_3B);
  const auto calib = synthetic_calibration(m);
  ASSERT_EQ(calib.size(), static_cast<std::size_t>(m.n_layers));
  for (const auto& layer : calib) {
    EXPECT_EQ(layer.size(), 6u);  // Q, K, V, O, up, down (no gate for OPT).
    for (const auto& op : layer) {
      EXPECT_GT(op.weight_dim, 0u);
      EXPECT_LT(op.w_min, 0.0f);
      EXPECT_GT(op.w_max, 0.0f);
      EXPECT_GT(op.x_var, 0.0);
    }
  }
}

TEST(SyntheticCalibration, GatedModelsHaveSevenOperators) {
  const auto calib = synthetic_calibration(spec(ModelId::kQwen25_7B));
  EXPECT_EQ(calib.front().size(), 7u);
}

TEST(SyntheticCalibration, Deterministic) {
  const LlmSpec m = spec(ModelId::kBloom3B);
  const auto a = synthetic_calibration(m, 17);
  const auto b = synthetic_calibration(m, 17);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t l = 0; l < a.size(); ++l) {
    EXPECT_EQ(a[l][0].w_max, b[l][0].w_max);
    EXPECT_EQ(a[l][0].x_var, b[l][0].x_var);
  }
}

TEST(SyntheticCalibration, DepthIncreasesSensitivityInputs) {
  // Later layers have wider weight ranges and larger activation variance.
  const LlmSpec m = spec(ModelId::kOpt1_3B);
  const auto calib = synthetic_calibration(m);
  const auto& first = calib.front().front();
  const auto& last = calib.back().front();
  EXPECT_GT(last.w_max, first.w_max);
  EXPECT_GT(last.x_var, first.x_var);
}

TEST(IndicatorTable, TableIDepthOrdering) {
  // Quantizing a later third of the stack must cost more indicator mass
  // than an earlier third — the Table I finding.
  const LlmSpec m = spec(ModelId::kOpt1_3B);  // 24 layers
  const auto table = variance_indicator_table(m, kBits);
  auto range_cost = [&](int lo, int hi) {
    double acc = 0.0;
    for (int l = lo; l < hi; ++l) {
      acc += table.at(static_cast<std::size_t>(l), Bitwidth::kInt4);
    }
    return acc;
  };
  const double early = range_cost(0, 8);
  const double mid = range_cost(8, 16);
  const double late = range_cost(16, 24);
  EXPECT_LT(early, mid);
  EXPECT_LT(mid, late);
}

TEST(IndicatorTable, Fp16AlwaysZero) {
  const auto table = variance_indicator_table(spec(ModelId::kBloom3B), kBits);
  for (std::size_t l = 0; l < table.values.size(); ++l) {
    EXPECT_EQ(table.at(l, Bitwidth::kFp16), 0.0);
  }
}

TEST(IndicatorTable, MonotoneInBitwidthEveryLayer) {
  const auto table = variance_indicator_table(spec(ModelId::kOpt30B), kBits);
  for (std::size_t l = 0; l < table.values.size(); ++l) {
    EXPECT_LT(table.at(l, Bitwidth::kInt8), table.at(l, Bitwidth::kInt4));
    EXPECT_LT(table.at(l, Bitwidth::kInt4), table.at(l, Bitwidth::kInt3));
  }
}

TEST(IndicatorTable, StochasticRoundingChangesValues) {
  const LlmSpec m = spec(ModelId::kOpt1_3B);
  const auto det = variance_indicator_table(m, kBits, sq::quant::Rounding::kDeterministic);
  const auto sto = variance_indicator_table(m, kBits, sq::quant::Rounding::kStochastic);
  EXPECT_NE(det.at(0, Bitwidth::kInt4), sto.at(0, Bitwidth::kInt4));
}

}  // namespace
}  // namespace sq::model
