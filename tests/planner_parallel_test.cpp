// Determinism contract of the parallel plan search: every thread count —
// including the legacy sequential path (num_threads == 1, which also
// bypasses the shared stage-time cache) — must produce the identical
// PlanResult, bit-for-bit, on the paper clusters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core_test_util.h"
#include "sim/pipeline.h"
#include "sim/plan_io.h"

namespace sq::core {
namespace {

using testutil::Harness;

PlannerConfig parallel_cfg(int num_threads) {
  PlannerConfig cfg;
  // Generous ILP limit so every solve runs to proven optimality — the
  // MILP time limit is the one wall-clock-dependent knob in the search.
  cfg.ilp_time_limit_s = 30.0;
  cfg.max_microbatch_pairs = 2;
  cfg.max_topologies = 6;
  cfg.group_size = 8;
  cfg.num_threads = num_threads;
  return cfg;
}

/// Every deterministic field of a PlanResult, in one comparable blob.
/// solve_seconds is wall time and deliberately excluded.
std::string fingerprint(const PlanResult& r) {
  std::string s;
  s += "feasible=" + std::to_string(r.feasible) + "\n";
  s += "failure=" + r.failure + "\n";
  s += "topology=" + r.topology + "\n";
  s += "planned_batch=" + std::to_string(r.planned_batch) + "\n";
  // hexfloat-exact doubles: any bit difference must show.
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "lat=%a tput=%a omega=%a ppl=%a acc=%a\n", r.predicted_latency_s,
                r.predicted_throughput, r.total_omega, r.est_ppl, r.est_accuracy);
  s += buf;
  s += "ilp_solves=" + std::to_string(r.ilp_solves) + "\n";
  s += "ilp_nodes=" + std::to_string(r.ilp_nodes) + "\n";
  s += "topologies=" + std::to_string(r.topologies_tried) + "\n";
  s += "pairs=" + std::to_string(r.pairs_tried) + "\n";
  if (r.feasible) s += sq::sim::plan_to_string(r.plan);
  return s;
}

class PlannerParallelFixture
    : public ::testing::TestWithParam<std::tuple<sq::model::ModelId, int>> {};

TEST_P(PlannerParallelFixture, PlanIsThreadCountInvariant) {
  const auto [model_id, cluster_id] = GetParam();
  Harness h(model_id, cluster_id, {64, 1024, 64, 2048});
  const Planner planner(h.model, h.cluster, h.inputs.workload, h.latency,
                        h.quality);

  sq::sim::stage_cache_clear();
  const PlanResult sequential = planner.plan(parallel_cfg(1));
  const std::string want = fingerprint(sequential);
  for (const int nt : {2, 4, 8}) {
    const PlanResult parallel = planner.plan(parallel_cfg(nt));
    EXPECT_EQ(fingerprint(parallel), want) << "num_threads=" << nt;
  }
}

TEST_P(PlannerParallelFixture, BaselinesAreThreadCountInvariant) {
  const auto [model_id, cluster_id] = GetParam();
  Harness h(model_id, cluster_id, {64, 1024, 64, 2048});
  const Planner planner(h.model, h.cluster, h.inputs.workload, h.latency,
                        h.quality);

  sq::sim::stage_cache_clear();
  const std::string uni = fingerprint(planner.plan_uniform(parallel_cfg(1)));
  const std::string het = fingerprint(planner.plan_het(parallel_cfg(1)));
  const std::string ada = fingerprint(planner.plan_adabits(parallel_cfg(1)));
  EXPECT_EQ(fingerprint(planner.plan_uniform(parallel_cfg(4))), uni);
  EXPECT_EQ(fingerprint(planner.plan_het(parallel_cfg(4))), het);
  EXPECT_EQ(fingerprint(planner.plan_adabits(parallel_cfg(4))), ada);
}

INSTANTIATE_TEST_SUITE_P(
    PaperClusters, PlannerParallelFixture,
    ::testing::Values(std::make_tuple(sq::model::ModelId::kOpt30B, 5),
                      std::make_tuple(sq::model::ModelId::kQwen25_14B, 3)),
    [](const auto& info) {
      return "cluster" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sq::core
