// Tests for the model registry (Sec. VI-A model lineup).
#include <gtest/gtest.h>

#include "model/registry.h"

namespace sq::model {
namespace {

TEST(Registry, AllModelsResolve) {
  for (const ModelId id : all_models()) {
    const LlmSpec m = spec(id);
    EXPECT_FALSE(m.name.empty());
    EXPECT_GT(m.h1, 0u);
    EXPECT_GT(m.h2, 0u);
    EXPECT_GT(m.n_layers, 0);
    EXPECT_GT(m.vocab_s, 0u);
    EXPECT_EQ(m.h1 % static_cast<std::uint64_t>(m.n_heads), 0u) << m.name;
  }
}

struct SizeCase {
  ModelId id;
  double billions;
  double tolerance;
};

class ParamCount : public ::testing::TestWithParam<SizeCase> {};

TEST_P(ParamCount, MatchesPublishedSize) {
  const auto [id, billions, tolerance] = GetParam();
  const LlmSpec m = spec(id);
  EXPECT_NEAR(static_cast<double>(m.total_params()) / 1e9, billions, tolerance)
      << m.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, ParamCount,
    ::testing::Values(SizeCase{ModelId::kOpt1_3B, 1.3, 0.2},
                      SizeCase{ModelId::kOpt13B, 13.0, 1.0},
                      SizeCase{ModelId::kOpt30B, 30.0, 1.5},
                      SizeCase{ModelId::kOpt66B, 66.0, 3.0},
                      SizeCase{ModelId::kBloom560M, 0.56, 0.3},
                      SizeCase{ModelId::kBloom1B7, 1.7, 0.6},
                      SizeCase{ModelId::kBloom3B, 3.0, 1.0},
                      SizeCase{ModelId::kQwen25_7B, 7.6, 1.0},
                      SizeCase{ModelId::kQwen25_14B, 14.7, 1.5},
                      SizeCase{ModelId::kQwen25_32B, 32.5, 3.0},
                      SizeCase{ModelId::kLlama33_70B, 70.0, 4.0}));

TEST(Registry, LookupByNameNormalizes) {
  EXPECT_EQ(spec_by_name("OPT-30B").name, "OPT-30B");
  EXPECT_EQ(spec_by_name("opt30b").name, "OPT-30B");
  EXPECT_EQ(spec_by_name("qwen2.5-14b-instruct").name, "Qwen2.5-14B-Instruct");
  EXPECT_THROW(spec_by_name("gpt-5"), std::invalid_argument);
}

TEST(Registry, FamiliesAreConsistent) {
  EXPECT_EQ(spec(ModelId::kOpt66B).family, "opt");
  EXPECT_EQ(spec(ModelId::kBloom3B).family, "bloom");
  EXPECT_EQ(spec(ModelId::kQwen25_32B).family, "qwen2.5");
  EXPECT_EQ(spec(ModelId::kLlama33_70B).family, "llama3");
}

TEST(Registry, ContextLimitsMatchFamilies) {
  EXPECT_EQ(spec(ModelId::kOpt30B).pos_s, 2048u);
  EXPECT_EQ(spec(ModelId::kQwen25_7B).pos_s, 32768u);
  EXPECT_EQ(spec(ModelId::kLlama33_70B).pos_s, 131072u);
}

TEST(Registry, ModernFamiliesUseGqaAndGatedMlp) {
  for (const ModelId id : {ModelId::kQwen25_7B, ModelId::kLlama33_70B}) {
    const LlmSpec m = spec(id);
    EXPECT_TRUE(m.mlp_gated) << m.name;
    EXPECT_GT(m.kv_dim, 0u);
    EXPECT_LT(m.kv_dim, m.h1);
  }
  EXPECT_FALSE(spec(ModelId::kOpt30B).mlp_gated);
}

}  // namespace
}  // namespace sq::model
