// Tests for the discrete-event pipeline simulator: schedule invariants,
// micro-batching effects, straggler behaviour, OOM propagation.
#include <gtest/gtest.h>

#include "hw/paper_clusters.h"
#include "model/registry.h"
#include "sim/pipeline.h"

namespace sq::sim {
namespace {

using sq::hw::Bitwidth;

ExecutionPlan even_plan(const sq::model::LlmSpec& m, int stages, Bitwidth b,
                        std::uint64_t eta, std::uint64_t xi) {
  ExecutionPlan p;
  const int per = m.n_layers / stages;
  for (int s = 0; s < stages; ++s) {
    p.stages.push_back({{s}, s * per, s + 1 == stages ? m.n_layers : (s + 1) * per});
  }
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), b);
  p.prefill_microbatch = eta;
  p.decode_microbatch = xi;
  return p;
}

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture()
      : m_(sq::model::spec(sq::model::ModelId::kOpt13B)),
        c_(sq::hw::paper_cluster(9)) {}
  sq::model::LlmSpec m_;
  sq::hw::Cluster c_;
};

TEST_F(PipelineFixture, BasicInvariants) {
  const auto p = even_plan(m_, 4, Bitwidth::kInt8, 4, 8);
  BatchWorkload w{16, 512, 32, 2048};
  const SimResult r = simulate_batch(c_, m_, p, w);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(r.prefill_us, 0.0);
  EXPECT_GT(r.decode_us, 0.0);
  EXPECT_NEAR(r.total_us, r.prefill_us + r.decode_us, 1.0);
  EXPECT_GT(r.throughput_tok_s, 0.0);
  EXPECT_GE(r.bubble_fraction, 0.0);
  EXPECT_LE(r.bubble_fraction, 1.0);
  ASSERT_EQ(r.stage_prefill_us.size(), 4u);
  ASSERT_EQ(r.stage_decode_us.size(), 4u);
}

TEST_F(PipelineFixture, ThroughputMatchesTokensOverTime) {
  const auto p = even_plan(m_, 4, Bitwidth::kInt8, 4, 8);
  BatchWorkload w{16, 512, 32, 2048};
  const SimResult r = simulate_batch(c_, m_, p, w);
  EXPECT_NEAR(r.throughput_tok_s, 16.0 * 32.0 / (r.total_us * 1e-6), 1e-6);
}

TEST_F(PipelineFixture, OomShortCircuits) {
  const auto big = sq::model::spec(sq::model::ModelId::kOpt66B);
  const auto p = even_plan(big, 4, Bitwidth::kFp16, 4, 8);
  BatchWorkload w{64, 1024, 64, 2048};
  const SimResult r = simulate_batch(c_, big, p, w);
  EXPECT_TRUE(r.oom);
  EXPECT_GE(r.oom_device, 0);
  EXPECT_EQ(r.throughput_tok_s, 0.0);
}

TEST_F(PipelineFixture, MicrobatchingPipelinesPrefill) {
  // With more micro-batches the pipeline overlaps stage work: total time
  // should drop versus one giant micro-batch (bubbles permitting).
  BatchWorkload w{32, 1024, 8, 2048};
  const auto serial = even_plan(m_, 4, Bitwidth::kInt8, 32, 32);
  const auto piped = even_plan(m_, 4, Bitwidth::kInt8, 4, 32);
  const double t_serial = simulate_batch(c_, m_, serial, w).prefill_us;
  const double t_piped = simulate_batch(c_, m_, piped, w).prefill_us;
  EXPECT_LT(t_piped, t_serial);
}

TEST_F(PipelineFixture, StragglerDominatesPipeline) {
  // Heterogeneous cluster: putting most layers on the P100s slows the
  // whole pipeline versus loading the V100.
  const auto het = sq::hw::paper_cluster(6);  // 3x P100 + 1x V100
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  BatchWorkload w{8, 512, 16, 2048};

  ExecutionPlan p100_heavy;
  p100_heavy.stages.push_back({{0}, 0, 12});
  p100_heavy.stages.push_back({{1}, 12, 24});
  p100_heavy.stages.push_back({{2}, 24, 36});
  p100_heavy.stages.push_back({{3}, 36, 40});  // V100 nearly idle
  p100_heavy.layer_bits.assign(40, Bitwidth::kInt4);
  p100_heavy.prefill_microbatch = 4;
  p100_heavy.decode_microbatch = 8;

  ExecutionPlan v100_heavy = p100_heavy;
  v100_heavy.stages[0].layer_end = 4;
  v100_heavy.stages[1] = {{1}, 4, 8};
  v100_heavy.stages[2] = {{2}, 8, 12};
  v100_heavy.stages[3] = {{3}, 12, 40};  // V100 takes the bulk

  const double t_bad = simulate_batch(het, m, p100_heavy, w).total_us;
  const double t_good = simulate_batch(het, m, v100_heavy, w).total_us;
  EXPECT_LT(t_good, t_bad * 0.6);
}

TEST_F(PipelineFixture, QuantizedWeightsSpeedUpDecodeHeavyWorkloads) {
  BatchWorkload w{8, 128, 128, 2048};  // decode-dominated
  const auto fp16 = even_plan(m_, 4, Bitwidth::kFp16, 4, 8);
  const auto int4 = even_plan(m_, 4, Bitwidth::kInt4, 4, 8);
  const double t16 = simulate_batch(c_, m_, fp16, w).decode_us;
  const double t4 = simulate_batch(c_, m_, int4, w).decode_us;
  EXPECT_LT(t4, t16);
}

TEST_F(PipelineFixture, SlowInterconnectHurts) {
  // Same devices, slower Ethernet between stages (cluster 6 link is 100G).
  const auto fast = sq::hw::paper_cluster(5);  // T4s + V100, 800G
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  ExecutionPlan p;
  p.stages.push_back({{0}, 0, 20});
  p.stages.push_back({{3}, 20, 40});  // crosses T4-node -> V100-node link
  p.layer_bits.assign(40, Bitwidth::kInt8);
  p.prefill_microbatch = 2;
  p.decode_microbatch = 8;
  BatchWorkload w{16, 1024, 16, 2048};
  const double t800 = simulate_batch(fast, m, p, w).total_us;

  // Rebuild cluster 5 with 100 Gbit Ethernet.
  auto nodes = fast.nodes();
  const sq::hw::Cluster slow("slow", {nodes[0], nodes[1]}, 100.0);
  const double t100 = simulate_batch(slow, m, p, w).total_us;
  EXPECT_GT(t100, t800);
}

TEST_F(PipelineFixture, StageHelpersMatchPlanBits) {
  const auto p = even_plan(m_, 4, Bitwidth::kInt8, 4, 8);
  BatchWorkload w{16, 512, 32, 2048};
  const KernelModel km;
  const double t0 = stage_prefill_time_us(c_, m_, p, 0, 4, w, km);
  EXPECT_GT(t0, 0.0);
  const double d0 = stage_decode_time_us(c_, m_, p, 0, 8, 512, km);
  EXPECT_GT(d0, 0.0);
  // Custom-backend discount inflates both.
  EXPECT_GT(stage_prefill_time_us(c_, m_, p, 0, 4, w, km, 0.7), t0);
}

TEST_F(PipelineFixture, DeterministicAcrossRuns) {
  const auto p = even_plan(m_, 4, Bitwidth::kInt8, 4, 8);
  BatchWorkload w{16, 512, 32, 2048};
  const SimResult a = simulate_batch(c_, m_, p, w);
  const SimResult b = simulate_batch(c_, m_, p, w);
  EXPECT_EQ(a.total_us, b.total_us);
}

TEST_F(PipelineFixture, StageTimeMemoizationIsBitExact) {
  const auto p = even_plan(m_, 4, Bitwidth::kInt4, 4, 8);
  BatchWorkload w{16, 512, 32, 2048};
  PipelineOptions cached;
  cached.kernel.ground_truth = true;
  PipelineOptions uncached = cached;
  uncached.memoize = false;

  stage_cache_clear();
  const SimResult a = simulate_batch(c_, m_, p, w, uncached);
  const SimResult b = simulate_batch(c_, m_, p, w, cached);   // fills cache
  const SimResult c = simulate_batch(c_, m_, p, w, cached);   // pure hits
  EXPECT_EQ(stage_cache_stats().misses, stage_cache_stats().entries);
  EXPECT_GT(stage_cache_stats().hits, 0u);

  for (const SimResult* r : {&b, &c}) {
    EXPECT_EQ(a.prefill_us, r->prefill_us);
    EXPECT_EQ(a.decode_us, r->decode_us);
    EXPECT_EQ(a.total_us, r->total_us);
    EXPECT_EQ(a.throughput_tok_s, r->throughput_tok_s);
    EXPECT_EQ(a.stage_prefill_us, r->stage_prefill_us);
    EXPECT_EQ(a.stage_decode_us, r->stage_decode_us);
  }
}

TEST_F(PipelineFixture, StageCacheDistinguishesBitwidthAndShape) {
  BatchWorkload w{16, 512, 32, 2048};
  stage_cache_clear();
  const SimResult a =
      simulate_batch(c_, m_, even_plan(m_, 4, Bitwidth::kInt4, 4, 8), w);
  const SimResult b =
      simulate_batch(c_, m_, even_plan(m_, 4, Bitwidth::kInt8, 4, 8), w);
  EXPECT_NE(a.total_us, b.total_us);
  BatchWorkload w2{16, 768, 32, 2048};
  const SimResult c =
      simulate_batch(c_, m_, even_plan(m_, 4, Bitwidth::kInt4, 4, 8), w2);
  EXPECT_NE(a.total_us, c.total_us);
}

}  // namespace
}  // namespace sq::sim
