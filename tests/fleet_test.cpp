// Tests for the synthetic production-fleet statistics (Fig. 1 substrate).
#include <gtest/gtest.h>

#include "hw/fleet.h"

namespace sq::hw {
namespace {

TEST(Fleet, SharesSumToOne) {
  const FleetStats s = production_fleet_stats();
  double total = 0.0;
  for (const auto& e : s.entries) total += e.fleet_share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Fleet, UtilizationInUnitInterval) {
  const FleetStats s = production_fleet_stats(12, 7);
  for (const auto& e : s.entries) {
    ASSERT_EQ(e.monthly_utilization.size(), 12u);
    for (const double u : e.monthly_utilization) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(Fleet, QualitativeShapeOfFig1) {
  // A100s: small share, highest utilization.  T4s: largest share, low
  // utilization — the idle capacity SplitQuant harvests.
  const FleetStats s = production_fleet_stats();
  double a100_share = 0, a100_util = 0, t4_share = 0, t4_util = 0;
  for (const auto& e : s.entries) {
    if (e.type == GpuType::kA100_40G) {
      a100_share = e.fleet_share;
      a100_util = mean_utilization(e);
    }
    if (e.type == GpuType::kT4) {
      t4_share = e.fleet_share;
      t4_util = mean_utilization(e);
    }
  }
  EXPECT_LT(a100_share, t4_share);
  EXPECT_GT(a100_util, 0.7);
  EXPECT_LT(t4_util, 0.5);
  EXPECT_GT(a100_util, t4_util + 0.3);
}

TEST(Fleet, SeededReproducibility) {
  const FleetStats a = production_fleet_stats(6, 1);
  const FleetStats b = production_fleet_stats(6, 1);
  const FleetStats c = production_fleet_stats(6, 2);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  EXPECT_EQ(a.entries[0].monthly_utilization, b.entries[0].monthly_utilization);
  EXPECT_NE(a.entries[0].monthly_utilization, c.entries[0].monthly_utilization);
}

TEST(Fleet, MeanUtilizationOfEmptySeries) {
  FleetEntry e;
  EXPECT_EQ(mean_utilization(e), 0.0);
}

}  // namespace
}  // namespace sq::hw
