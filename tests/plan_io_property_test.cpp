// Property tests for plan serialization: seeded random plans round-trip
// byte-identically, and corrupted / truncated inputs always come back as
// diagnostics, never as crashes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/plan.h"
#include "sim/plan_io.h"

namespace sq::sim {
namespace {

/// SplitMix64: the repo's standard seeded stream (cheap, reproducible).
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
};

Bitwidth random_bits(Rng& rng) {
  constexpr Bitwidth kAll[] = {Bitwidth::kInt3, Bitwidth::kInt4,
                               Bitwidth::kInt8, Bitwidth::kFp16};
  return kAll[rng.below(4)];
}

/// A structurally coherent random plan: contiguous layer cover, unique
/// device indices, random bitwidths, and (sometimes) repair / shard
/// provenance — the full surface plan_io round-trips.
ExecutionPlan random_plan(std::uint64_t seed) {
  Rng rng(seed);
  ExecutionPlan p;
  const int layers = 1 + static_cast<int>(rng.below(80));
  const int stages = 1 + static_cast<int>(rng.below(
                             static_cast<std::uint64_t>(std::min(layers, 6))));
  int next_device = 0;
  int begin = 0;
  for (int s = 0; s < stages; ++s) {
    StageSpec st;
    const int tp = 1 + static_cast<int>(rng.below(3));
    for (int d = 0; d < tp; ++d) st.devices.push_back(next_device++);
    st.layer_begin = begin;
    const int remaining_stages = stages - s - 1;
    const int max_take = layers - begin - remaining_stages;
    st.layer_end = (s + 1 == stages)
                       ? layers
                       : begin + 1 + static_cast<int>(rng.below(
                                         static_cast<std::uint64_t>(max_take)));
    begin = st.layer_end;
    p.stages.push_back(st);
  }
  for (int l = 0; l < layers; ++l) p.layer_bits.push_back(random_bits(rng));
  p.prefill_microbatch = 1 + rng.below(32);
  p.decode_microbatch = 1 + rng.below(64);
  p.kv_bits = random_bits(rng);
  // No empty scheme: plan_io canonicalizes it to "unnamed" on save.
  const char* schemes[] = {"splitquant", "uniform", "memory-greedy", "unnamed"};
  p.scheme = schemes[rng.below(4)];
  if (rng.below(2)) {
    p.repair_generation = 1 + static_cast<int>(rng.below(4));
    const int n_excluded = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < n_excluded; ++i) {
      p.excluded_devices.push_back(next_device + i);
    }
  }
  if (rng.below(2)) {
    p.num_shards = 2 + static_cast<int>(rng.below(4));
    p.shard_index = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(p.num_shards)));
  }
  return p;
}

void expect_plans_equal(const ExecutionPlan& a, const ExecutionPlan& b,
                        std::uint64_t seed) {
  ASSERT_EQ(a.stages.size(), b.stages.size()) << "seed " << seed;
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].devices, b.stages[s].devices) << "seed " << seed;
    EXPECT_EQ(a.stages[s].layer_begin, b.stages[s].layer_begin);
    EXPECT_EQ(a.stages[s].layer_end, b.stages[s].layer_end);
  }
  EXPECT_EQ(a.layer_bits, b.layer_bits) << "seed " << seed;
  EXPECT_EQ(a.prefill_microbatch, b.prefill_microbatch);
  EXPECT_EQ(a.decode_microbatch, b.decode_microbatch);
  EXPECT_EQ(a.kv_bits, b.kv_bits);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.repair_generation, b.repair_generation);
  EXPECT_EQ(a.excluded_devices, b.excluded_devices);
  EXPECT_EQ(a.shard_index, b.shard_index);
  EXPECT_EQ(a.num_shards, b.num_shards);
}

TEST(PlanIoProperty, RandomPlansRoundTripByteIdentically) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const ExecutionPlan plan = random_plan(seed);
    const std::string text = plan_to_string(plan);
    const LoadResult loaded = plan_from_string(text);
    ASSERT_TRUE(loaded.ok) << "seed " << seed << ": " << loaded.error
                           << "\n" << text;
    expect_plans_equal(plan, loaded.plan, seed);
    // Save -> load -> save is byte-identical: the format is canonical.
    EXPECT_EQ(plan_to_string(loaded.plan), text) << "seed " << seed;
  }
}

TEST(PlanIoProperty, CorruptedBytesNeverCrashAndAlwaysDiagnose) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(0xC0FFEE ^ seed);
    std::string text = plan_to_string(random_plan(seed));
    // Flip 1..4 bytes to printable junk.
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips && !text.empty(); ++f) {
      const std::size_t pos = rng.below(text.size());
      text[pos] = static_cast<char>('!' + rng.below(94));
    }
    LoadResult r;
    ASSERT_NO_THROW(r = plan_from_string(text)) << "seed " << seed;
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "seed " << seed;
    } else {
      // A mutation may happen to stay well-formed; the result must then
      // still serialize canonically.
      const std::string again = plan_to_string(r.plan);
      const LoadResult r2 = plan_from_string(again);
      ASSERT_TRUE(r2.ok) << "seed " << seed;
      EXPECT_EQ(plan_to_string(r2.plan), again) << "seed " << seed;
    }
  }
}

TEST(PlanIoProperty, TruncationsNeverCrash) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(0xBEEF ^ seed);
    const std::string text = plan_to_string(random_plan(seed));
    for (int cut = 0; cut < 8; ++cut) {
      const std::string prefix = text.substr(0, rng.below(text.size() + 1));
      LoadResult r;
      ASSERT_NO_THROW(r = plan_from_string(prefix)) << "seed " << seed;
      if (!r.ok) {
        EXPECT_FALSE(r.error.empty()) << "seed " << seed;
      }
    }
  }
}

TEST(PlanIoProperty, DroppedLinesNeverCrash) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(0xD00D ^ seed);
    const std::string text = plan_to_string(random_plan(seed));
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t nl = text.find('\n', start);
      const std::size_t end = nl == std::string::npos ? text.size() : nl;
      lines.push_back(text.substr(start, end - start));
      start = end + 1;
    }
    if (lines.empty()) continue;
    const std::size_t drop = rng.below(lines.size());
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == drop) continue;
      mutated += lines[i];
      mutated += '\n';
    }
    LoadResult r;
    ASSERT_NO_THROW(r = plan_from_string(mutated)) << "seed " << seed;
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "seed " << seed;
    }
  }
}

TEST(PlanIoProperty, GarbageInputsNeverCrash) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(0xFACE ^ seed);
    std::string junk;
    const std::size_t len = rng.below(256);
    for (std::size_t i = 0; i < len; ++i) {
      // Mostly printable with occasional newlines and NULs.
      const std::uint64_t roll = rng.below(20);
      if (roll == 0) {
        junk += '\n';
      } else if (roll == 1) {
        junk += '\0';
      } else {
        junk += static_cast<char>(' ' + rng.below(95));
      }
    }
    LoadResult r;
    ASSERT_NO_THROW(r = plan_from_string(junk)) << "seed " << seed;
    EXPECT_FALSE(r.ok) << "seed " << seed;  // junk never has the v1 header
    EXPECT_FALSE(r.error.empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sq::sim
