// Tests for the measured quality probes: the Fig. 4 / Table I shapes must
// hold on real forward passes.
#include <gtest/gtest.h>

#include "nn/probe.h"

namespace sq::nn {
namespace {

TinyConfig probe_config() {
  // Large enough for stable orderings: the 4-layer/48-dim scale is too
  // noisy for monotonicity assertions.
  TinyConfig cfg;
  cfg.n_layers = 6;
  cfg.d_model = 96;
  cfg.d_ffn = 256;
  cfg.n_heads = 6;
  cfg.vocab = 256;
  cfg.max_seq = 32;
  cfg.seed = 9;
  return cfg;
}

class ProbeFixture : public ::testing::Test {
 protected:
  ProbeFixture() : model_(probe_config()),
                   seqs_(sample_sequences(probe_config(), 5, 28, 11)) {}
  TinyTransformer model_;
  std::vector<std::vector<int>> seqs_;
};

TEST_F(ProbeFixture, Fp16IsTheQualityFloor) {
  const auto fp16 = evaluate_quality(model_, uniform_config(6, Bitwidth::kFp16), seqs_);
  const auto int4 = evaluate_quality(model_, uniform_config(6, Bitwidth::kInt4), seqs_);
  EXPECT_LT(fp16.ppl_proxy, int4.ppl_proxy);
  EXPECT_GT(fp16.accuracy, 0.99);
  EXPECT_LT(fp16.mean_kl, 1e-4);
}

TEST_F(ProbeFixture, QualityDegradesMonotonically) {
  double prev_ppl = 0.0;
  double prev_acc = 1.1;
  for (const Bitwidth b : {Bitwidth::kFp16, Bitwidth::kInt8, Bitwidth::kInt4,
                           Bitwidth::kInt3}) {
    const auto r = evaluate_quality(model_, uniform_config(6, b), seqs_);
    EXPECT_GT(r.ppl_proxy, prev_ppl) << to_string(b);
    EXPECT_LE(r.accuracy, prev_acc + 1e-9) << to_string(b);
    prev_ppl = r.ppl_proxy;
    prev_acc = r.accuracy;
  }
}

TEST_F(ProbeFixture, MixedFourEightBeatsUniformFour) {
  // The Fig. 4 claim: mixed 4/8 preserves quality better than uniform 4.
  const Bitwidth mix48[] = {Bitwidth::kInt4, Bitwidth::kInt8};
  const auto mixed = evaluate_quality(model_, mixed_config(6, mix48, 5), seqs_);
  const auto uni4 = evaluate_quality(model_, uniform_config(6, Bitwidth::kInt4), seqs_);
  EXPECT_LT(mixed.ppl_proxy, uni4.ppl_proxy);
}

TEST_F(ProbeFixture, TableIEarlyLayersCheaperToQuantize) {
  // Quantizing the first half hurts less than the last half.
  const auto early =
      evaluate_quality(model_, range_config(6, 0, 2, Bitwidth::kInt3), seqs_);
  const auto late =
      evaluate_quality(model_, range_config(6, 4, 6, Bitwidth::kInt3), seqs_);
  EXPECT_LT(early.mean_kl, late.mean_kl);
}

TEST(Probe, SampleSequencesRespectShape) {
  const TinyConfig cfg = probe_config();
  const auto seqs = sample_sequences(cfg, 5, 12, 7);
  ASSERT_EQ(seqs.size(), 5u);
  for (const auto& s : seqs) {
    EXPECT_EQ(s.size(), 12u);
    for (const int t : s) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, static_cast<int>(cfg.vocab));
    }
  }
}

TEST(Probe, SequencesAreZipfSkewed) {
  const TinyConfig cfg = probe_config();
  const auto seqs = sample_sequences(cfg, 50, 24, 9);
  int low = 0, total = 0;
  for (const auto& s : seqs) {
    for (const int t : s) {
      low += t < 8;
      ++total;
    }
  }
  // Top-8 tokens should dominate a Zipf-ish stream.
  EXPECT_GT(static_cast<double>(low) / total, 0.4);
}

TEST(Probe, ConfigBuilders) {
  const auto uni = uniform_config(3, Bitwidth::kInt8);
  EXPECT_EQ(uni.size(), 3u);
  EXPECT_EQ(uni[1].bits, Bitwidth::kInt8);

  const auto rng_cfg = range_config(5, 1, 3, Bitwidth::kInt4);
  EXPECT_EQ(rng_cfg[0].bits, Bitwidth::kFp16);
  EXPECT_EQ(rng_cfg[1].bits, Bitwidth::kInt4);
  EXPECT_EQ(rng_cfg[2].bits, Bitwidth::kInt4);
  EXPECT_EQ(rng_cfg[3].bits, Bitwidth::kFp16);

  const Bitwidth per_layer[] = {Bitwidth::kInt3, Bitwidth::kFp16};
  const auto explicit_cfg = config_from_bits(per_layer);
  EXPECT_EQ(explicit_cfg[0].bits, Bitwidth::kInt3);
  EXPECT_EQ(explicit_cfg[1].bits, Bitwidth::kFp16);
}

TEST(Probe, MixedConfigSeeded) {
  const Bitwidth choices[] = {Bitwidth::kInt4, Bitwidth::kInt8};
  const auto a = mixed_config(8, choices, 1);
  const auto b = mixed_config(8, choices, 1);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(a[i].bits, b[i].bits);
}

}  // namespace
}  // namespace sq::nn
