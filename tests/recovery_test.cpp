// Integration tests for fault-tolerant serving: checkpointed execution,
// retry/backoff on transient faults, plan repair on permanent failures,
// graceful degradation, and the bit-determinism contract across planner
// thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/repair.h"
#include "core_test_util.h"
#include "runtime/engine.h"
#include "runtime/recovery.h"
#include "sim/faults.h"
#include "sim/plan_io.h"

namespace sq::runtime {
namespace {

using sq::core::testutil::Harness;
using sq::hw::Bitwidth;
using sq::sim::FaultKind;
using sq::sim::FaultSchedule;

sq::sim::ExecutionPlan plan_for(const sq::model::LlmSpec& m, int stages, Bitwidth b) {
  sq::sim::ExecutionPlan p;
  const int per = m.n_layers / stages;
  for (int s = 0; s < stages; ++s) {
    p.stages.push_back({{s}, s * per, s + 1 == stages ? m.n_layers : (s + 1) * per});
  }
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), b);
  p.prefill_microbatch = 4;
  p.decode_microbatch = 16;
  return p;
}

sq::core::PlannerConfig repair_cfg(int threads = 1) {
  sq::core::PlannerConfig cfg;
  cfg.use_heuristic = true;  // fast, ILP-free repair for tests
  cfg.max_topologies = 4;
  cfg.max_microbatch_pairs = 2;
  cfg.validate_top_k = 2;
  cfg.group_size = 8;
  cfg.num_threads = threads;
  return cfg;
}

/// Fixture over the 4x V100 single-node cluster (paper cluster 9): failing
/// one device leaves a 3x V100 cluster that still fits OPT-13B.
class RecoveryFixture : public ::testing::Test {
 protected:
  RecoveryFixture()
      : h_(sq::model::ModelId::kOpt13B, 9, {16, 512, 32, 2048}),
        plan_(plan_for(h_.model, 4, Bitwidth::kInt8)),
        eng_(h_.cluster, h_.model, plan_),
        batches_{{16, 512, 32, 2048}, {16, 256, 16, 2048}} {
    healthy_ = OfflineEngine(h_.cluster, h_.model, plan_).serve(batches_);
  }

  double expected_tokens() const { return 16.0 * 32 + 16.0 * 16; }

  Harness h_;
  sq::sim::ExecutionPlan plan_;
  FaultTolerantEngine eng_;
  std::vector<sq::sim::BatchWorkload> batches_;
  ServeStats healthy_;
};

TEST_F(RecoveryFixture, FaultFreeMatchesOfflineEngineBitForBit) {
  const RecoveryStats r = eng_.serve(batches_);
  ASSERT_TRUE(r.serve.feasible) << r.serve.failure;
  EXPECT_EQ(r.serve.total_seconds, healthy_.total_seconds);
  EXPECT_EQ(r.serve.output_tokens, healthy_.output_tokens);
  EXPECT_EQ(r.serve.throughput_tok_s, healthy_.throughput_tok_s);
  EXPECT_EQ(r.serve.mean_bubble, healthy_.mean_bubble);
  EXPECT_EQ(r.serve.waves, healthy_.waves);
  EXPECT_EQ(r.goodput_tok_s, r.serve.throughput_tok_s);
  EXPECT_EQ(r.wall_seconds, r.serve.total_seconds);
  EXPECT_EQ(r.faults_hit, 0u);
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(r.final_plan.repair_generation, 0);
}

TEST_F(RecoveryFixture, PermanentFailureRepairsAndCompletesEverything) {
  FaultSchedule faults;
  faults.events.push_back(
      {FaultKind::kDeviceFail, 2, healthy_.total_seconds * 0.5 * 1e6});

  RecoveryOptions opts;
  opts.faults = &faults;
  opts.replan = sq::core::make_replanner(h_.model, h_.latency, h_.quality,
                                         h_.inputs.workload, repair_cfg());
  const RecoveryStats r = eng_.serve(batches_, opts);
  ASSERT_TRUE(r.serve.feasible) << r.serve.failure;
  EXPECT_GE(r.faults_hit, 1u);
  EXPECT_GE(r.repairs_attempted, 1u);
  EXPECT_EQ(r.repairs_succeeded, 1u);
  EXPECT_EQ(r.final_generation, 1);
  EXPECT_EQ(r.lost_requests, 0u);
  // Every request completed despite the failure.
  EXPECT_DOUBLE_EQ(r.serve.output_tokens, expected_tokens());
  EXPECT_EQ(r.serve.batches, 2u);
  // The repaired plan excludes the dead device and carries provenance.
  EXPECT_EQ(r.final_plan.repair_generation, 1);
  ASSERT_EQ(r.final_plan.excluded_devices.size(), 1u);
  EXPECT_EQ(r.final_plan.excluded_devices[0], 2);
  for (const auto& st : r.final_plan.stages) {
    for (const int d : st.devices) EXPECT_LT(d, 3);  // 3 survivors
  }
  // Recovery cost is visible: lost + replanning time widens the wall clock,
  // so goodput is strictly below the productive throughput.
  EXPECT_GT(r.lost_us, 0.0);
  EXPECT_GT(r.replan_us, 0.0);
  EXPECT_GT(r.wall_seconds, r.serve.total_seconds);
  EXPECT_LT(r.goodput_tok_s, r.serve.throughput_tok_s);
  EXPECT_FALSE(r.events.empty());
}

TEST_F(RecoveryFixture, RepairedRunIsBitIdenticalAcrossPlannerThreadCounts) {
  FaultSchedule faults;
  faults.events.push_back(
      {FaultKind::kDeviceFail, 1, healthy_.total_seconds * 0.4 * 1e6});
  // A transient straggler for spice: hits retry + repair paths together.
  faults.events.push_back(
      {FaultKind::kSlowdown, 3, 0.0, healthy_.total_seconds * 0.2 * 1e6, 2.0});
  faults.normalize();

  RecoveryStats base;
  bool first = true;
  for (const int threads : {1, 2, 4, 8}) {
    RecoveryOptions opts;
    opts.faults = &faults;
    opts.replan = sq::core::make_replanner(h_.model, h_.latency, h_.quality,
                                           h_.inputs.workload, repair_cfg(threads));
    const RecoveryStats r = eng_.serve(batches_, opts);
    ASSERT_TRUE(r.serve.feasible) << r.serve.failure;
    if (first) {
      base = r;
      first = false;
      continue;
    }
    // Bit-identical timeline and stats (replan_wall_s is real wall time and
    // is the one documented exception).
    EXPECT_EQ(r.events, base.events) << "threads=" << threads;
    EXPECT_EQ(r.serve.total_seconds, base.serve.total_seconds);
    EXPECT_EQ(r.serve.output_tokens, base.serve.output_tokens);
    EXPECT_EQ(r.serve.throughput_tok_s, base.serve.throughput_tok_s);
    EXPECT_EQ(r.wall_seconds, base.wall_seconds);
    EXPECT_EQ(r.goodput_tok_s, base.goodput_tok_s);
    EXPECT_EQ(r.lost_us, base.lost_us);
    EXPECT_EQ(r.backoff_us, base.backoff_us);
    EXPECT_EQ(r.replan_us, base.replan_us);
    EXPECT_EQ(r.faults_hit, base.faults_hit);
    EXPECT_EQ(r.retries, base.retries);
    EXPECT_EQ(r.repairs_succeeded, base.repairs_succeeded);
    EXPECT_EQ(r.final_generation, base.final_generation);
    EXPECT_EQ(sq::sim::plan_to_string(r.final_plan),
              sq::sim::plan_to_string(base.final_plan));
  }
}

TEST_F(RecoveryFixture, TransientFailureRetriesWithoutRepair) {
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kDeviceFail, 1,
                           healthy_.total_seconds * 0.3 * 1e6, 0.2e6});

  RecoveryOptions opts;
  opts.faults = &faults;
  opts.replan = sq::core::make_replanner(h_.model, h_.latency, h_.quality,
                                         h_.inputs.workload, repair_cfg());
  const RecoveryStats r = eng_.serve(batches_, opts);
  ASSERT_TRUE(r.serve.feasible) << r.serve.failure;
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(r.repairs_attempted, 0u);  // waited it out instead
  EXPECT_EQ(r.lost_requests, 0u);
  EXPECT_DOUBLE_EQ(r.serve.output_tokens, expected_tokens());
  EXPECT_GT(r.backoff_us, 0.0);
  EXPECT_EQ(r.final_plan.repair_generation, 0);
}

TEST_F(RecoveryFixture, NoRepairBaselineLosesRemainingWork) {
  FaultSchedule faults;
  faults.events.push_back(
      {FaultKind::kDeviceFail, 2, healthy_.total_seconds * 0.5 * 1e6});

  RecoveryOptions opts;
  opts.faults = &faults;  // opts.replan left null
  const RecoveryStats r = eng_.serve(batches_, opts);
  EXPECT_TRUE(r.serve.feasible);  // not an engine failure, a degraded outcome
  EXPECT_FALSE(r.serve.failure.empty());
  EXPECT_GT(r.lost_requests, 0u);
  EXPECT_LT(r.serve.output_tokens, expected_tokens());
  EXPECT_EQ(r.repairs_attempted, 0u);
  EXPECT_LT(r.goodput_tok_s, healthy_.throughput_tok_s);
}

TEST_F(RecoveryFixture, EscalationLadderReachesTheFallback) {
  FaultSchedule faults;
  faults.events.push_back(
      {FaultKind::kDeviceFail, 0, healthy_.total_seconds * 0.5 * 1e6});

  int max_attempt_seen = -1;
  RecoveryOptions opts;
  opts.faults = &faults;
  const auto inner = sq::core::make_replanner(h_.model, h_.latency, h_.quality,
                                              h_.inputs.workload, repair_cfg());
  opts.replan = [&](const sq::hw::Cluster& degraded, int attempt) {
    max_attempt_seen = std::max(max_attempt_seen, attempt);
    if (attempt < 2) return ReplanOutcome{};  // force escalation
    return inner(degraded, attempt);          // uniform fallback
  };
  const RecoveryStats r = eng_.serve(batches_, opts);
  ASSERT_TRUE(r.serve.feasible) << r.serve.failure;
  EXPECT_EQ(max_attempt_seen, 2);
  EXPECT_EQ(r.repairs_attempted, 3u);
  EXPECT_EQ(r.repairs_succeeded, 1u);
  EXPECT_EQ(r.lost_requests, 0u);
  EXPECT_DOUBLE_EQ(r.serve.output_tokens, expected_tokens());
  EXPECT_EQ(r.final_plan.scheme, "uniform");
}

TEST_F(RecoveryFixture, NoFeasibleRepairDegradesGracefully) {
  FaultSchedule faults;
  faults.events.push_back(
      {FaultKind::kDeviceFail, 2, healthy_.total_seconds * 0.5 * 1e6});

  RecoveryOptions opts;
  opts.faults = &faults;
  opts.replan = [](const sq::hw::Cluster&, int) { return ReplanOutcome{}; };
  const RecoveryStats r = eng_.serve(batches_, opts);
  EXPECT_TRUE(r.serve.feasible);
  EXPECT_NE(r.serve.failure.find("no feasible repair"), std::string::npos);
  EXPECT_EQ(r.repairs_attempted, 3u);  // full ladder exhausted
  EXPECT_EQ(r.repairs_succeeded, 0u);
  EXPECT_GT(r.lost_requests, 0u);
}

TEST_F(RecoveryFixture, MakeReplannerProducesValidPlanOnDegradedCluster) {
  const auto deg = sq::hw::degrade_cluster(h_.cluster, {2});
  ASSERT_EQ(deg.cluster.device_count(), 3);
  EXPECT_EQ(deg.to_original, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(deg.from_original, (std::vector<int>{0, 1, -1, 2}));
  const auto replan = sq::core::make_replanner(h_.model, h_.latency, h_.quality,
                                               h_.inputs.workload, repair_cfg());
  const ReplanOutcome out = replan(deg.cluster, 0);
  ASSERT_TRUE(out.feasible) << out.failure;
  EXPECT_EQ(out.plan.validate(h_.model, deg.cluster), "");
}

TEST_F(RecoveryFixture, StragglerDerateShrinksRepairCapacity) {
  // A permanent straggler re-rates the degraded spec during repair.
  FaultSchedule faults;
  faults.events.push_back(
      {FaultKind::kDeviceFail, 2, healthy_.total_seconds * 0.5 * 1e6});
  faults.events.push_back({FaultKind::kSlowdown, 0, 0.0,
                           std::numeric_limits<double>::infinity(), 2.0});
  faults.normalize();

  std::vector<double> tflops_seen;
  RecoveryOptions opts;
  opts.faults = &faults;
  const auto inner = sq::core::make_replanner(h_.model, h_.latency, h_.quality,
                                              h_.inputs.workload, repair_cfg());
  opts.replan = [&](const sq::hw::Cluster& degraded, int attempt) {
    for (int d = 0; d < degraded.device_count(); ++d) {
      tflops_seen.push_back(degraded.spec(d).fp16_tflops);
    }
    return inner(degraded, attempt);
  };
  const RecoveryStats r = eng_.serve(batches_, opts);
  ASSERT_TRUE(r.serve.feasible) << r.serve.failure;
  ASSERT_EQ(tflops_seen.size(), 3u);  // one repair over 3 survivors
  // Device 0 was derated to half throughput; survivors 1 and 3 were not.
  EXPECT_DOUBLE_EQ(tflops_seen[0], tflops_seen[1] / 2.0);
  EXPECT_DOUBLE_EQ(tflops_seen[1], tflops_seen[2]);
}

}  // namespace
}  // namespace sq::runtime
