// Cross-module integration tests: full plan -> serve pipelines mirroring
// the paper's end-to-end experiments at reduced scale.
#include <gtest/gtest.h>

#include "core_test_util.h"
#include "runtime/engine.h"
#include "workload/profile.h"

namespace sq::core {
namespace {

using testutil::Harness;
using sq::runtime::Backend;
using sq::runtime::OfflineEngine;

PlannerConfig quick() {
  PlannerConfig cfg;
  cfg.ilp_time_limit_s = 3.0;
  cfg.max_microbatch_pairs = 2;
  cfg.max_topologies = 6;
  cfg.group_size = 8;
  return cfg;
}

double serve_throughput(const Harness& h, const sq::sim::ExecutionPlan& plan,
                        const std::vector<sq::workload::Request>& reqs,
                        Backend backend = Backend::kVllmStyle) {
  const OfflineEngine eng(h.cluster, h.model, plan, backend);
  const auto stats = eng.serve_requests(reqs, 128);
  return stats.feasible ? stats.throughput_tok_s : 0.0;
}

TEST(Integration, Fig9StyleHeterogeneousWin) {
  // Cluster 5, OPT-30B, CNN-DailyMail-like workload: SplitQuant must beat
  // the Uniform baseline in *measured* (simulated) throughput with quality
  // no worse than Uniform's.
  const auto reqs = sq::workload::sample(sq::workload::Dataset::kCnnDailyMail, 256, 1);
  const auto prof = sq::workload::make_profile(reqs, 128);
  Harness h(sq::model::ModelId::kOpt30B, 5,
            prof.planning_batch(sq::model::spec(sq::model::ModelId::kOpt30B)));
  const Planner planner(h.model, h.cluster, h.inputs.workload, h.latency, h.quality);

  const PlanResult uni = planner.plan_uniform(quick());
  ASSERT_TRUE(uni.feasible) << uni.failure;
  PlannerConfig cfg = quick();
  cfg.theta = 0.0;
  cfg.max_ppl_delta = uni.total_omega;
  const PlanResult sqr = planner.plan(cfg);
  ASSERT_TRUE(sqr.feasible) << sqr.failure;

  const double t_uni = serve_throughput(h, uni.plan, reqs);
  const double t_sq = serve_throughput(h, sqr.plan, reqs);
  ASSERT_GT(t_uni, 0.0);
  EXPECT_GT(t_sq, t_uni);
  EXPECT_LE(sqr.est_ppl, uni.est_ppl + 1e-9);
}

TEST(Integration, Fig10StyleSevereHeterogeneity) {
  // Cluster 6 (P100-heavy) with the custom backend: SplitQuant must beat
  // the Het baseline (the paper reports +108% on such clusters).
  const auto reqs = std::vector<sq::workload::Request>(64, {512, 32});
  Harness h(sq::model::ModelId::kOpt30B, 6, {32, 512, 32, 2048});
  const Planner planner(h.model, h.cluster, h.inputs.workload, h.latency, h.quality);

  PlannerConfig cfg = quick();
  cfg.custom_backend = true;
  const PlanResult het = planner.plan_het(cfg);
  PlannerConfig scfg = cfg;
  scfg.theta = 0.0;
  if (het.feasible) scfg.max_ppl_delta = std::max(het.total_omega, 0.5);
  const PlanResult sqr = planner.plan(scfg);
  ASSERT_TRUE(sqr.feasible) << sqr.failure;

  const double t_sq = serve_throughput(h, sqr.plan, reqs, Backend::kCustom);
  ASSERT_GT(t_sq, 0.0);
  if (het.feasible) {
    const double t_het = serve_throughput(h, het.plan, reqs, Backend::kCustom);
    EXPECT_GE(t_sq, t_het * 0.99);
  }
}

TEST(Integration, HomogeneousClusterStillGains) {
  // Table IV property: on cluster 9/10 SplitQuant >= the best Uniform
  // configuration (it searches a superset of configurations).
  const auto reqs = sq::workload::sample(sq::workload::Dataset::kCnnDailyMail, 128, 3);
  const auto prof = sq::workload::make_profile(reqs, 128);
  Harness h(sq::model::ModelId::kQwen25_32B, 10,
            prof.planning_batch(sq::model::spec(sq::model::ModelId::kQwen25_32B)));
  const Planner planner(h.model, h.cluster, h.inputs.workload, h.latency, h.quality);

  const PlanResult uni = planner.plan_uniform(quick());
  ASSERT_TRUE(uni.feasible) << uni.failure;
  PlannerConfig cfg = quick();
  cfg.theta = 0.0;
  cfg.max_ppl_delta = uni.total_omega;
  const PlanResult sqr = planner.plan(cfg);
  ASSERT_TRUE(sqr.feasible) << sqr.failure;

  const double t_uni = serve_throughput(h, uni.plan, reqs);
  const double t_sq = serve_throughput(h, sqr.plan, reqs);
  // Homogeneous gains are modest (Table IV: 1.04-1.16x); allow calibration
  // noise around parity.
  EXPECT_GE(t_sq, t_uni * 0.95);
}

TEST(Integration, PlanSurvivesEngineValidation) {
  // Every scheme's plan must be executable by the engine without OOM.
  Harness h(sq::model::ModelId::kQwen25_14B, 3, {64, 1024, 128, 2048});
  const Planner planner(h.model, h.cluster, h.inputs.workload, h.latency, h.quality);
  const auto reqs = sq::workload::sample(sq::workload::Dataset::kCnnDailyMail, 128, 9);
  for (const auto& r : {planner.plan_uniform(quick()), planner.plan_het(quick()),
                        planner.plan_adabits(quick()), planner.plan(quick())}) {
    ASSERT_TRUE(r.feasible) << r.failure;
    const OfflineEngine eng(h.cluster, h.model, r.plan);
    const auto stats = eng.serve_requests(reqs, 64);
    EXPECT_TRUE(stats.feasible) << r.plan.scheme << ": " << stats.failure;
    EXPECT_GT(stats.throughput_tok_s, 0.0) << r.plan.scheme;
  }
}

TEST(Integration, PlannerIsDeterministic) {
  Harness h(sq::model::ModelId::kOpt13B, 9, {32, 512, 32, 2048});
  const Planner planner(h.model, h.cluster, h.inputs.workload, h.latency, h.quality);
  const PlanResult a = planner.plan(quick());
  const PlanResult b = planner.plan(quick());
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_EQ(a.plan.layer_bits, b.plan.layer_bits);
  EXPECT_EQ(a.plan.summary(h.cluster), b.plan.summary(h.cluster));
}

}  // namespace
}  // namespace sq::core
