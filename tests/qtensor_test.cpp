// Tests for the group-quantized tensor storage format.
#include <gtest/gtest.h>

#include <cstring>

#include "quant/qtensor.h"
#include "tensor/ops.h"

namespace sq::quant {
namespace {

using sq::hw::Bitwidth;
using sq::tensor::Tensor;

Tensor random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  sq::tensor::Rng rng(seed);
  Tensor t(r, c);
  t.fill_normal(rng, 0.0f, 0.05f);
  return t;
}

TEST(QTensor, ShapePreserved) {
  const Tensor w = random_matrix(16, 32, 1);
  const QTensor q(w, Bitwidth::kInt4, Scheme::kSymmetric, Rounding::kDeterministic, 64);
  EXPECT_EQ(q.rows(), 16u);
  EXPECT_EQ(q.cols(), 32u);
  EXPECT_EQ(q.dequantize().rows(), 16u);
  EXPECT_EQ(q.dequantize().cols(), 32u);
}

TEST(QTensor, MseMatchesDequantizedError) {
  const Tensor w = random_matrix(32, 64, 2);
  const QTensor q(w, Bitwidth::kInt4, Scheme::kAsymmetric, Rounding::kDeterministic, 64);
  const double reported = q.mse_vs_original();
  const double recomputed = sq::tensor::mse(q.dequantize(), w);
  EXPECT_NEAR(reported, recomputed, 1e-10);
}

TEST(QTensor, SmallerGroupsReduceError) {
  // Finer groups track local ranges better: MSE(group=32) <= MSE(group=whole).
  const Tensor w = random_matrix(64, 64, 3);
  const QTensor fine(w, Bitwidth::kInt4, Scheme::kAsymmetric, Rounding::kDeterministic, 32);
  const QTensor coarse(w, Bitwidth::kInt4, Scheme::kAsymmetric, Rounding::kDeterministic, 0);
  EXPECT_LE(fine.mse_vs_original(), coarse.mse_vs_original());
}

TEST(QTensor, StorageScalesWithBitwidth) {
  const Tensor w = random_matrix(64, 64, 4);
  const auto bytes_at = [&](Bitwidth b) {
    return QTensor(w, b, Scheme::kSymmetric, Rounding::kDeterministic, 128)
        .storage_bytes();
  };
  const auto b16 = bytes_at(Bitwidth::kFp16);
  const auto b8 = bytes_at(Bitwidth::kInt8);
  const auto b4 = bytes_at(Bitwidth::kInt4);
  const auto b3 = bytes_at(Bitwidth::kInt3);
  EXPECT_GT(b16, b8);
  EXPECT_GT(b8, b4);
  EXPECT_GT(b4, b3);
  // INT8 ~ half of FP16 (plus small scale overhead).
  EXPECT_NEAR(static_cast<double>(b8) / static_cast<double>(b16), 0.5, 0.05);
  // INT4 ~ quarter.
  EXPECT_NEAR(static_cast<double>(b4) / static_cast<double>(b16), 0.25, 0.05);
}

TEST(QTensor, Fp16PassthroughIsNearLossless) {
  const Tensor w = random_matrix(8, 8, 5);
  const QTensor q(w, Bitwidth::kFp16, Scheme::kSymmetric, Rounding::kDeterministic);
  EXPECT_LT(q.mse_vs_original(), 1e-9);
}

TEST(QTensor, ErrorMonotoneInBitwidth) {
  const Tensor w = random_matrix(48, 48, 6);
  double prev = 0.0;
  for (const Bitwidth b : {Bitwidth::kInt8, Bitwidth::kInt4, Bitwidth::kInt3}) {
    const QTensor q(w, b, Scheme::kSymmetric, Rounding::kDeterministic, 64);
    EXPECT_GT(q.mse_vs_original(), prev);
    prev = q.mse_vs_original();
  }
}

TEST(QTensor, StochasticRoundingNeedsRngAndWorks) {
  sq::tensor::Rng rng(9);
  const Tensor w = random_matrix(16, 16, 7);
  const QTensor q(w, Bitwidth::kInt4, Scheme::kAsymmetric, Rounding::kStochastic, 64,
                  &rng);
  EXPECT_GT(q.mse_vs_original(), 0.0);
  EXPECT_LT(q.mse_vs_original(), 1e-3);
}

// Groups are carved out of the flattened tensor, so the packing has three
// edge regimes the fast paths must honor: a partial tail group when
// group_size does not divide rows*cols, degenerate one-element groups, and
// a single group swallowing the whole tensor.  storage_bytes() accounting
// is pinned to its documented formula for each.

TEST(QTensor, NonDividingGroupSizeQuantizesTheTail) {
  // 3x7 = 21 values, groups of 5: four full groups plus a 1-element tail.
  const Tensor w = random_matrix(3, 7, 10);
  const QTensor q(w, Bitwidth::kInt4, Scheme::kAsymmetric,
                  Rounding::kDeterministic, 5);
  const Tensor deq = q.dequantize();
  ASSERT_EQ(deq.rows(), 3u);
  ASSERT_EQ(deq.cols(), 7u);
  // The tail element forms a [v, v] group: asymmetric zero-point lands on
  // v exactly, so the final element reconstructs losslessly.
  EXPECT_EQ(deq.data()[20], w.data()[20]);
  // MSE accounting covers the tail group too.
  EXPECT_NEAR(q.mse_vs_original(), sq::tensor::mse(deq, w), 1e-10);
  // ceil(21 * 4 bits / 8) code bytes + ceil(21/5)=5 groups * (scale+zero).
  EXPECT_EQ(q.storage_bytes(), (21u * 4 + 7) / 8 + 5u * 4);
}

TEST(QTensor, OneElementGroupsReconstructAsymmetricExactly) {
  const Tensor w = random_matrix(4, 9, 11);
  const QTensor q(w, Bitwidth::kInt3, Scheme::kAsymmetric,
                  Rounding::kDeterministic, 1);
  // Every group has w_min == w_max: scale 0, zero-point = the value, code
  // 0 — reconstruction is exact at ANY bitwidth, even 3-bit.
  const Tensor deq = q.dequantize();
  for (std::size_t i = 0; i < w.data().size(); ++i) {
    EXPECT_EQ(deq.data()[i], w.data()[i]) << "element " << i;
  }
  EXPECT_EQ(q.mse_vs_original(), 0.0);
  // Parameter overhead dominates: 36 groups * 4 bytes + ceil(36*3/8).
  EXPECT_EQ(q.storage_bytes(), (36u * 3 + 7) / 8 + 36u * 4);

  // Symmetric one-element groups keep the sign through |v|-scaling; the
  // reconstruction is near-exact but not guaranteed bit-exact.
  const QTensor qs(w, Bitwidth::kInt8, Scheme::kSymmetric,
                   Rounding::kDeterministic, 1);
  const Tensor deqs = qs.dequantize();
  for (std::size_t i = 0; i < w.data().size(); ++i) {
    EXPECT_NEAR(deqs.data()[i], w.data()[i], 1e-6) << "element " << i;
  }
}

TEST(QTensor, GroupLargerThanTensorUsesOneGroup) {
  const Tensor w = random_matrix(3, 7, 12);
  const QTensor q(w, Bitwidth::kInt8, Scheme::kSymmetric,
                  Rounding::kDeterministic, 1000);
  // One group over all 21 values: one fp16 scale in the accounting.
  EXPECT_EQ(q.storage_bytes(), 21u + 1u * 2);
  EXPECT_NEAR(q.mse_vs_original(), sq::tensor::mse(q.dequantize(), w), 1e-10);
}

TEST(QTensor, GroupZeroMeansOneGroupPerRow) {
  const Tensor w = random_matrix(5, 12, 13);
  const QTensor per_row(w, Bitwidth::kInt4, Scheme::kSymmetric,
                        Rounding::kDeterministic, 0);
  const QTensor explicit_cols(w, Bitwidth::kInt4, Scheme::kSymmetric,
                              Rounding::kDeterministic, 12);
  // group_size=0 normalizes to cols: identical packing and accounting.
  EXPECT_EQ(per_row.storage_bytes(), explicit_cols.storage_bytes());
  EXPECT_EQ(per_row.storage_bytes(), (60u * 4 + 7) / 8 + 5u * 2);
  const Tensor a = per_row.dequantize();
  const Tensor b = explicit_cols.dequantize();
  EXPECT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           a.data().size() * sizeof(float)));
}

TEST(QTensor, AsymmetricStorageChargesZeroPointPerGroup) {
  const Tensor w = random_matrix(8, 16, 14);
  const auto bytes_of = [&](Scheme s) {
    return QTensor(w, Bitwidth::kInt4, s, Rounding::kDeterministic, 32)
        .storage_bytes();
  };
  // Same codes footprint; asymmetric adds one fp16 zero per group (4 groups).
  EXPECT_EQ(bytes_of(Scheme::kAsymmetric), bytes_of(Scheme::kSymmetric) + 4u * 2);
}

}  // namespace
}  // namespace sq::quant
