// Tests for the group-quantized tensor storage format.
#include <gtest/gtest.h>

#include "quant/qtensor.h"
#include "tensor/ops.h"

namespace sq::quant {
namespace {

using sq::hw::Bitwidth;
using sq::tensor::Tensor;

Tensor random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  sq::tensor::Rng rng(seed);
  Tensor t(r, c);
  t.fill_normal(rng, 0.0f, 0.05f);
  return t;
}

TEST(QTensor, ShapePreserved) {
  const Tensor w = random_matrix(16, 32, 1);
  const QTensor q(w, Bitwidth::kInt4, Scheme::kSymmetric, Rounding::kDeterministic, 64);
  EXPECT_EQ(q.rows(), 16u);
  EXPECT_EQ(q.cols(), 32u);
  EXPECT_EQ(q.dequantize().rows(), 16u);
  EXPECT_EQ(q.dequantize().cols(), 32u);
}

TEST(QTensor, MseMatchesDequantizedError) {
  const Tensor w = random_matrix(32, 64, 2);
  const QTensor q(w, Bitwidth::kInt4, Scheme::kAsymmetric, Rounding::kDeterministic, 64);
  const double reported = q.mse_vs_original();
  const double recomputed = sq::tensor::mse(q.dequantize(), w);
  EXPECT_NEAR(reported, recomputed, 1e-10);
}

TEST(QTensor, SmallerGroupsReduceError) {
  // Finer groups track local ranges better: MSE(group=32) <= MSE(group=whole).
  const Tensor w = random_matrix(64, 64, 3);
  const QTensor fine(w, Bitwidth::kInt4, Scheme::kAsymmetric, Rounding::kDeterministic, 32);
  const QTensor coarse(w, Bitwidth::kInt4, Scheme::kAsymmetric, Rounding::kDeterministic, 0);
  EXPECT_LE(fine.mse_vs_original(), coarse.mse_vs_original());
}

TEST(QTensor, StorageScalesWithBitwidth) {
  const Tensor w = random_matrix(64, 64, 4);
  const auto bytes_at = [&](Bitwidth b) {
    return QTensor(w, b, Scheme::kSymmetric, Rounding::kDeterministic, 128)
        .storage_bytes();
  };
  const auto b16 = bytes_at(Bitwidth::kFp16);
  const auto b8 = bytes_at(Bitwidth::kInt8);
  const auto b4 = bytes_at(Bitwidth::kInt4);
  const auto b3 = bytes_at(Bitwidth::kInt3);
  EXPECT_GT(b16, b8);
  EXPECT_GT(b8, b4);
  EXPECT_GT(b4, b3);
  // INT8 ~ half of FP16 (plus small scale overhead).
  EXPECT_NEAR(static_cast<double>(b8) / static_cast<double>(b16), 0.5, 0.05);
  // INT4 ~ quarter.
  EXPECT_NEAR(static_cast<double>(b4) / static_cast<double>(b16), 0.25, 0.05);
}

TEST(QTensor, Fp16PassthroughIsNearLossless) {
  const Tensor w = random_matrix(8, 8, 5);
  const QTensor q(w, Bitwidth::kFp16, Scheme::kSymmetric, Rounding::kDeterministic);
  EXPECT_LT(q.mse_vs_original(), 1e-9);
}

TEST(QTensor, ErrorMonotoneInBitwidth) {
  const Tensor w = random_matrix(48, 48, 6);
  double prev = 0.0;
  for (const Bitwidth b : {Bitwidth::kInt8, Bitwidth::kInt4, Bitwidth::kInt3}) {
    const QTensor q(w, b, Scheme::kSymmetric, Rounding::kDeterministic, 64);
    EXPECT_GT(q.mse_vs_original(), prev);
    prev = q.mse_vs_original();
  }
}

TEST(QTensor, StochasticRoundingNeedsRngAndWorks) {
  sq::tensor::Rng rng(9);
  const Tensor w = random_matrix(16, 16, 7);
  const QTensor q(w, Bitwidth::kInt4, Scheme::kAsymmetric, Rounding::kStochastic, 64,
                  &rng);
  EXPECT_GT(q.mse_vs_original(), 0.0);
  EXPECT_LT(q.mse_vs_original(), 1e-3);
}

}  // namespace
}  // namespace sq::quant
