// Tests for the phase-adaptive batch scheduler.
#include <gtest/gtest.h>

#include "hw/paper_clusters.h"
#include "model/registry.h"
#include "runtime/scheduler.h"
#include "sim/memory.h"

namespace sq::runtime {
namespace {

using sq::hw::Bitwidth;

sq::sim::ExecutionPlan plan_for(const sq::model::LlmSpec& m, int stages, Bitwidth b) {
  sq::sim::ExecutionPlan p;
  const int per = m.n_layers / stages;
  for (int s = 0; s < stages; ++s) {
    p.stages.push_back({{s}, s * per, s + 1 == stages ? m.n_layers : (s + 1) * per});
  }
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), b);
  p.prefill_microbatch = 8;
  p.decode_microbatch = 32;
  return p;
}

TEST(Scheduler, MaxConcurrencyFindsBoundary) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt30B);
  const auto c = sq::hw::paper_cluster(9);
  const auto p = plan_for(m, 4, Bitwidth::kInt8);
  sq::sim::BatchWorkload w{256, 1024, 128, 2048};
  const std::uint64_t cap = max_concurrency(c, m, p, w);
  ASSERT_GT(cap, 0u);
  // The boundary must be exact: cap fits, cap+1 does not.
  sq::sim::BatchWorkload ok = w;
  ok.batch_size = cap;
  EXPECT_FALSE(sq::sim::plan_memory(c, m, p, ok).oom);
  ok.batch_size = cap + 1;
  EXPECT_TRUE(sq::sim::plan_memory(c, m, p, ok).oom);
}

TEST(Scheduler, QuantizedWeightsRaiseConcurrency) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt30B);
  const auto c = sq::hw::paper_cluster(9);
  sq::sim::BatchWorkload w{256, 1024, 128, 2048};
  const auto cap16 = max_concurrency(c, m, plan_for(m, 4, Bitwidth::kFp16), w);
  const auto cap4 = max_concurrency(c, m, plan_for(m, 4, Bitwidth::kInt4), w);
  EXPECT_GT(cap4, cap16);
}

TEST(Scheduler, ZeroWhenWeightsDontFit) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt66B);
  const auto c = sq::hw::paper_cluster(1);  // one V100
  sq::sim::ExecutionPlan p;
  p.stages.push_back({{0}, 0, m.n_layers});
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), Bitwidth::kFp16);
  sq::sim::BatchWorkload w{8, 512, 32, 2048};
  EXPECT_EQ(max_concurrency(c, m, p, w), 0u);
  const BatchSchedule s = schedule_batch(c, m, p, w);
  EXPECT_FALSE(s.weights_fit);
}

TEST(Scheduler, WavesAreBalanced) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt30B);
  const auto c = sq::hw::paper_cluster(9);
  const auto p = plan_for(m, 4, Bitwidth::kInt8);
  sq::sim::BatchWorkload w{256, 1024, 128, 2048};
  const BatchSchedule s = schedule_batch(c, m, p, w);
  ASSERT_TRUE(s.weights_fit);
  ASSERT_FALSE(s.waves.empty());
  std::uint64_t total = 0, mn = ~0ULL, mx = 0;
  for (const auto wv : s.waves) {
    total += wv;
    mn = std::min(mn, wv);
    mx = std::max(mx, wv);
  }
  EXPECT_EQ(total, w.batch_size);
  EXPECT_LE(mx - mn, 1u);  // no starving remainder wave
}

TEST(Scheduler, SingleWaveWhenItFits) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  const auto c = sq::hw::paper_cluster(9);
  const auto p = plan_for(m, 4, Bitwidth::kInt4);
  sq::sim::BatchWorkload w{8, 256, 16, 2048};
  const BatchSchedule s = schedule_batch(c, m, p, w);
  ASSERT_EQ(s.waves.size(), 1u);
  EXPECT_EQ(s.waves[0], 8u);
  EXPECT_EQ(s.eta, 8u);
  EXPECT_EQ(s.xi, 32u);
}

}  // namespace
}  // namespace sq::runtime
