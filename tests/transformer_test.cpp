// Tests for the executable tiny transformer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/probe.h"
#include "nn/transformer.h"
#include "tensor/ops.h"
#include "tensor/stats.h"

namespace sq::nn {
namespace {

TinyConfig small_config() {
  TinyConfig cfg;
  cfg.n_layers = 3;
  cfg.d_model = 32;
  cfg.d_ffn = 64;
  cfg.n_heads = 4;
  cfg.vocab = 64;
  cfg.max_seq = 16;
  cfg.seed = 1;
  return cfg;
}

TEST(TinyTransformer, RejectsBadHeadCount) {
  TinyConfig cfg = small_config();
  cfg.n_heads = 5;  // 32 % 5 != 0
  EXPECT_THROW(TinyTransformer{cfg}, std::invalid_argument);
}

TEST(TinyTransformer, ForwardShape) {
  const TinyTransformer model(small_config());
  const int tokens[] = {1, 2, 3, 4, 5};
  const auto logits = model.forward(tokens);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 64u);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_TRUE(std::isfinite(logits[i]));
  }
}

TEST(TinyTransformer, DeterministicForward) {
  const TinyTransformer a(small_config()), b(small_config());
  const int tokens[] = {7, 9, 11};
  const auto la = a.forward(tokens);
  const auto lb = b.forward(tokens);
  EXPECT_LT(sq::tensor::mse(la, lb), 1e-12);
}

TEST(TinyTransformer, CausalityPrefixInvariance) {
  // Logits at position i must not depend on tokens after i.
  const TinyTransformer model(small_config());
  const int full[] = {3, 1, 4, 1, 5, 9};
  const int prefix[] = {3, 1, 4};
  const auto lf = model.forward(full);
  const auto lp = model.forward(prefix);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < lp.cols(); ++v) {
      EXPECT_NEAR(lf.at(i, v), lp.at(i, v), 1e-4) << "pos " << i;
    }
  }
}

TEST(TinyTransformer, Fp16QuantIsNearReference) {
  const TinyTransformer model(small_config());
  const int tokens[] = {1, 2, 3, 4};
  const auto ref = model.forward(tokens);
  const auto cfg = uniform_config(3, Bitwidth::kFp16);
  const auto q = model.forward(tokens, cfg);
  EXPECT_LT(sq::tensor::mse(ref, q), 1e-4);
}

TEST(TinyTransformer, QuantizationDistortsMonotonically) {
  const TinyTransformer model(small_config());
  const int tokens[] = {5, 6, 7, 8, 9, 10};
  const auto ref = model.forward(tokens);
  double prev = 0.0;
  for (const Bitwidth b : {Bitwidth::kInt8, Bitwidth::kInt4, Bitwidth::kInt3}) {
    const auto cfg = uniform_config(3, b);
    const double err = sq::tensor::mse(ref, model.forward(tokens, cfg));
    EXPECT_GT(err, prev) << to_string(b);
    prev = err;
  }
}

TEST(TinyTransformer, WeightsAccessor) {
  const TinyTransformer model(small_config());
  EXPECT_EQ(model.weights(0, Op::kQ).rows(), 32u);
  EXPECT_EQ(model.weights(0, Op::kMlpUp).cols(), 64u);
  EXPECT_EQ(model.weights(2, Op::kMlpDown).rows(), 64u);
  EXPECT_THROW(model.weights(0, Op::kCount), std::invalid_argument);
}

TEST(TinyTransformer, DepthScalesWeightMagnitude) {
  // Construction gives deeper layers wider weight ranges (Table I driver).
  const TinyTransformer model(small_config());
  const auto s0 = sq::tensor::summarize(model.weights(0, Op::kQ).data());
  const auto s2 = sq::tensor::summarize(model.weights(2, Op::kQ).data());
  EXPECT_GT(s2.max - s2.min, s0.max - s0.min);
}

TEST(TinyTransformer, CalibrationCapturesActivations) {
  const TinyTransformer model(small_config());
  const auto seqs = sample_sequences(model.config(), 3, 8, 1);
  const auto stats = model.calibrate(seqs);
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& layer : stats) {
    ASSERT_EQ(layer.size(), static_cast<std::size_t>(Op::kCount));
    for (const auto& op : layer) {
      EXPECT_GT(op.weight_dim, 0u);
      EXPECT_GT(op.x_var, 0.0);
    }
  }
  // Raw activations exposed for the Hessian indicator.
  const auto& acts = model.calibration_activations(0, Op::kQ);
  EXPECT_GT(acts.rows(), 0u);
  EXPECT_EQ(acts.cols(), 32u);
}

}  // namespace
}  // namespace sq::nn
