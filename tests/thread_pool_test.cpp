// Tests for the planner's worker pool: result delivery, exception
// propagation through futures and parallel_for, and the sequential
// fallback paths.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace sq::common {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  const int n = resolve_threads(0);
  EXPECT_GE(n, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(n, static_cast<int>(hw));
  }
}

TEST(ResolveThreads, ExplicitCountsPassThrough) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
  EXPECT_EQ(resolve_threads(-3), 1);  // floored
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, TasksActuallyRunOnWorkers) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(
      {
        try {
          fut.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins; every submitted task must have run.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelFor, CoversEveryIndexWithPool) {
  ThreadPool pool(4);
  std::vector<int> out(1000, 0);
  parallel_for(&pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ParallelFor, NullPoolRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(&pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, RethrowsLowestIndexedException) {
  ThreadPool pool(4);
  // Two failing indices far apart: the chunk containing the lower index
  // must win, regardless of completion order.
  const auto run = [&] {
    parallel_for(&pool, 100, [](std::size_t i) {
      if (i == 13 || i == 97) {
        throw std::runtime_error("idx " + std::to_string(i));
      }
    });
  };
  try {
    run();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "idx 13");
  }
}

TEST(ParallelFor, ExceptionOnInlinePathPropagates) {
  EXPECT_THROW(parallel_for(nullptr, 5,
                            [](std::size_t i) {
                              if (i == 2) throw std::logic_error("inline");
                            }),
               std::logic_error);
}

}  // namespace
}  // namespace sq::common
