// Integration tests for the fleet engine: multi-job LPT scheduling across
// replica groups, graceful rejection of oversized jobs, group-local fault
// isolation (repair / retire / reassign) and the bit-determinism contract
// across scheduler thread counts.
#include <gtest/gtest.h>

#include <vector>

#include "core/repair.h"
#include "cost/latency_model.h"
#include "hw/cluster.h"
#include "model/registry.h"
#include "quality/quality_model.h"
#include "runtime/fleet.h"
#include "sim/faults.h"
#include "sim/plan_io.h"

namespace sq::runtime {
namespace {

using sq::hw::Bitwidth;
using sq::sim::FaultKind;
using sq::sim::FaultSchedule;

/// A 2-node fleet of 2x V100 each: two natural replica groups of two
/// devices, every group big enough for OPT-13B at INT8.
sq::hw::Cluster fleet_cluster() {
  sq::hw::Node n;
  n.gpu_type = sq::hw::GpuType::kV100;
  n.gpu_count = 2;
  n.intra_gbps = 300.0;
  sq::hw::Node n0 = n, n1 = n;
  n0.name = "node-v100-0";
  n1.name = "node-v100-1";
  return sq::hw::Cluster("fleet-2x2xV100", {n0, n1}, 800.0);
}

/// Even 2-stage pipeline plan over a 2-device cluster at one bitwidth.
sq::sim::ExecutionPlan plan_for(const sq::model::LlmSpec& m, Bitwidth b) {
  sq::sim::ExecutionPlan p;
  const int half = m.n_layers / 2;
  p.stages.push_back({{0}, 0, half});
  p.stages.push_back({{1}, half, m.n_layers});
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), b);
  p.prefill_microbatch = 4;
  p.decode_microbatch = 16;
  return p;
}

class FleetFixture : public ::testing::Test {
 protected:
  FleetFixture() : model_(sq::model::spec(sq::model::ModelId::kOpt13B)) {
    const sq::hw::Cluster fleet = fleet_cluster();
    for (const auto& devices :
         {std::vector<int>{2, 3}, std::vector<int>{0, 1}}) {
      // degrade_cluster excludes `devices`, so the first entry builds the
      // group over {0, 1} and the second over {2, 3}.
      const auto sub = sq::hw::degrade_cluster(fleet, devices);
      ReplicaGroup rg;
      rg.cluster = sub.cluster;
      rg.to_original = sub.to_original;
      rg.plan = plan_for(model_, Bitwidth::kInt8);
      rg.plan.shard_index = static_cast<int>(groups_.size());
      rg.plan.num_shards = 2;
      groups_.push_back(std::move(rg));
    }
  }

  std::vector<FleetJob> jobs4() const {
    return {
        {"job-a", {{16, 512, 32, 2048}}},
        {"job-b", {{16, 256, 16, 2048}}},
        {"job-c", {{8, 512, 32, 2048}}},
        {"job-d", {{8, 256, 16, 2048}}},
    };
  }

  static double expected_tokens(const std::vector<FleetJob>& jobs) {
    double t = 0.0;
    for (const auto& j : jobs) {
      for (const auto& b : j.batches) {
        t += static_cast<double>(b.batch_size) * static_cast<double>(b.gen_tokens);
      }
    }
    return t;
  }

  FleetEngine engine() const { return FleetEngine(model_, groups_); }

  sq::model::LlmSpec model_;
  std::vector<ReplicaGroup> groups_;
};

TEST_F(FleetFixture, ZeroJobsServesToEmptyStats) {
  const FleetStats s = engine().serve({});
  ASSERT_TRUE(s.feasible) << s.failure;
  EXPECT_TRUE(s.jobs.empty());
  EXPECT_EQ(s.jobs_completed, 0u);
  EXPECT_EQ(s.makespan_s, 0.0);
  EXPECT_EQ(s.aggregate_tok_s, 0.0);
  ASSERT_EQ(s.group_busy_s.size(), 2u);
  EXPECT_EQ(s.group_busy_s[0], 0.0);
  EXPECT_EQ(s.group_busy_s[1], 0.0);
}

TEST_F(FleetFixture, NoGroupsIsStructurallyInfeasible) {
  const FleetEngine empty(model_, {});
  const FleetStats s = empty.serve(jobs4());
  EXPECT_FALSE(s.feasible);
  EXPECT_NE(s.failure.find("no replica groups"), std::string::npos);
}

TEST_F(FleetFixture, CompletesAllJobsAcrossBothGroups) {
  const auto jobs = jobs4();
  const FleetStats s = engine().serve(jobs);
  ASSERT_TRUE(s.feasible) << s.failure;
  EXPECT_EQ(s.jobs_completed, jobs.size());
  EXPECT_EQ(s.jobs_rejected, 0u);
  EXPECT_DOUBLE_EQ(s.output_tokens, expected_tokens(jobs));
  ASSERT_EQ(s.jobs.size(), jobs.size());
  for (const auto& out : s.jobs) {
    EXPECT_TRUE(out.completed) << out.job << ": " << out.failure;
    EXPECT_GE(out.group, 0);
    EXPECT_GT(out.end_s, out.start_s);
  }
  // LPT over equal-rate groups spreads 4 jobs 2/2.
  ASSERT_EQ(s.group_jobs.size(), 2u);
  EXPECT_EQ(s.group_jobs[0], 2u);
  EXPECT_EQ(s.group_jobs[1], 2u);
  // Makespan is the busiest group's clock; aggregate is tokens over it.
  EXPECT_DOUBLE_EQ(s.makespan_s, std::max(s.group_busy_s[0], s.group_busy_s[1]));
  EXPECT_DOUBLE_EQ(s.aggregate_tok_s, s.output_tokens / s.makespan_s);
}

TEST_F(FleetFixture, BitIdenticalAcrossSchedulerThreadCounts) {
  const auto jobs = jobs4();
  FleetStats base;
  bool first = true;
  for (const int threads : {1, 2, 4, 8}) {
    FleetOptions opts;
    opts.num_threads = threads;
    const FleetStats s = engine().serve(jobs, opts);
    ASSERT_TRUE(s.feasible) << s.failure;
    if (first) {
      base = s;
      first = false;
      continue;
    }
    EXPECT_EQ(s.events, base.events) << "threads=" << threads;
    EXPECT_EQ(s.jobs_completed, base.jobs_completed);
    EXPECT_EQ(s.output_tokens, base.output_tokens);
    EXPECT_EQ(s.makespan_s, base.makespan_s);
    EXPECT_EQ(s.aggregate_tok_s, base.aggregate_tok_s);
    EXPECT_EQ(s.group_busy_s, base.group_busy_s);
    EXPECT_EQ(s.group_jobs, base.group_jobs);
    ASSERT_EQ(s.jobs.size(), base.jobs.size());
    for (std::size_t j = 0; j < s.jobs.size(); ++j) {
      EXPECT_EQ(s.jobs[j].group, base.jobs[j].group);
      EXPECT_EQ(s.jobs[j].start_s, base.jobs[j].start_s);
      EXPECT_EQ(s.jobs[j].end_s, base.jobs[j].end_s);
      EXPECT_EQ(s.jobs[j].recovery.serve.output_tokens,
                base.jobs[j].recovery.serve.output_tokens);
    }
  }
}

TEST_F(FleetFixture, OversizedJobRejectedGracefully) {
  auto jobs = jobs4();
  // A single request whose KV alone dwarfs any group's memory: no group
  // can hold even one request, so the job must bounce, not crash.
  jobs.push_back({"job-goliath", {{1, 4u << 20, 32, 2048}}});
  const FleetStats s = engine().serve(jobs);
  ASSERT_TRUE(s.feasible) << s.failure;
  EXPECT_EQ(s.jobs_rejected, 1u);
  EXPECT_EQ(s.jobs_completed, jobs.size() - 1);
  const JobOutcome& goliath = s.jobs.back();
  EXPECT_EQ(goliath.group, -1);
  EXPECT_FALSE(goliath.completed);
  EXPECT_NE(goliath.failure.find("rejected"), std::string::npos);
  // The rest of the workload is unaffected.
  EXPECT_DOUBLE_EQ(s.output_tokens, expected_tokens(jobs4()));
}

TEST_F(FleetFixture, PermanentFailureRetiresOnlyItsGroupAndReassigns) {
  const auto jobs = jobs4();
  // Kill fleet device 0 (group 0) early: no replanner, so group 0 retires
  // mid-first-job and its queued jobs drain onto group 1.
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kDeviceFail, 0, 0.05e6});
  FleetOptions opts;
  opts.faults = &faults;
  const FleetStats s = engine().serve(jobs, opts);
  ASSERT_TRUE(s.feasible) << s.failure;
  EXPECT_EQ(s.groups_retired, 1u);
  EXPECT_GE(s.jobs_reassigned, 1u);
  EXPECT_GE(s.faults_hit, 1u);
  // Exactly one job (the one the failure hit) is lost; everything queued
  // behind it re-ran on the surviving group.
  EXPECT_EQ(s.jobs_completed, jobs.size() - 1);
  std::size_t failed = 0;
  for (const auto& out : s.jobs) {
    if (!out.completed) {
      ++failed;
      EXPECT_EQ(out.group, 0) << out.job;
      EXPECT_FALSE(out.failure.empty());
    }
  }
  EXPECT_EQ(failed, 1u);
  // Group 1 never saw the fault.
  for (const auto& out : s.jobs) {
    if (out.completed && out.group == 1) {
      EXPECT_EQ(out.recovery.faults_hit, 0u) << out.job;
    }
  }
}

TEST_F(FleetFixture, RepairKeepsTheGroupServing) {
  const auto jobs = jobs4();
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kDeviceFail, 0, 0.05e6});

  sq::cost::LatencyCostModel latency(model_);
  const std::vector<Bitwidth> bits = {Bitwidth::kFp16, Bitwidth::kInt8,
                                      Bitwidth::kInt4};
  sq::quality::QualityModel quality(model_, bits);
  sq::core::PlannerConfig cfg;
  cfg.bits = bits;
  cfg.use_heuristic = true;
  cfg.max_topologies = 4;
  cfg.max_microbatch_pairs = 2;
  cfg.validate_top_k = 2;
  cfg.group_size = 8;
  cfg.num_threads = 1;
  const sq::sim::BatchWorkload workload{16, 512, 32, 2048};
  FleetOptions opts;
  opts.faults = &faults;
  opts.replan = sq::core::make_replanner(model_, latency, quality, workload, cfg);

  const FleetStats s = engine().serve(jobs, opts);
  ASSERT_TRUE(s.feasible) << s.failure;
  // The repair keeps group 0 alive on its surviving device: no retirement,
  // no reassignment, every request of every job completes.
  EXPECT_EQ(s.groups_retired, 0u);
  EXPECT_EQ(s.jobs_reassigned, 0u);
  EXPECT_GE(s.repairs, 1u);
  EXPECT_EQ(s.jobs_completed, jobs.size());
  EXPECT_DOUBLE_EQ(s.output_tokens, expected_tokens(jobs));
}

TEST_F(FleetFixture, RepairedGroupCarriesShardProvenanceForward) {
  FaultSchedule faults;
  faults.events.push_back({FaultKind::kDeviceFail, 0, 0.05e6});

  sq::cost::LatencyCostModel latency(model_);
  const std::vector<Bitwidth> bits = {Bitwidth::kFp16, Bitwidth::kInt8,
                                      Bitwidth::kInt4};
  sq::quality::QualityModel quality(model_, bits);
  sq::core::PlannerConfig cfg;
  cfg.bits = bits;
  cfg.use_heuristic = true;
  cfg.max_topologies = 4;
  cfg.max_microbatch_pairs = 2;
  cfg.validate_top_k = 2;
  cfg.group_size = 8;
  cfg.num_threads = 1;
  const sq::sim::BatchWorkload workload{16, 512, 32, 2048};
  FleetOptions opts;
  opts.faults = &faults;
  opts.replan = sq::core::make_replanner(model_, latency, quality, workload, cfg);

  // A single-group fleet forces both jobs onto group 0: the second job
  // serves on the repaired group state, whose adopted plan must still
  // carry the shard stamps.
  const FleetEngine one_group(model_, {groups_[0]});
  const std::vector<FleetJob> jobs = {{"j0", {{16, 512, 32, 2048}}},
                                      {"j1", {{16, 512, 32, 2048}}}};
  const FleetStats s = one_group.serve(jobs, opts);
  ASSERT_TRUE(s.feasible) << s.failure;
  EXPECT_GE(s.repairs, 1u);
  std::size_t after_repair = 0;
  for (const auto& out : s.jobs) {
    if (out.group == 0 && out.recovery.final_generation == 0) {
      // Served after the in-job repair on the adopted plan.
      ++after_repair;
      EXPECT_EQ(out.recovery.final_plan.num_shards, 2);
      EXPECT_EQ(out.recovery.final_plan.shard_index, 0);
    }
  }
  EXPECT_GE(after_repair, 1u);
}

}  // namespace
}  // namespace sq::runtime
