// Tests for device-topology enumeration.
#include <gtest/gtest.h>

#include <set>

#include "core/topology.h"
#include "hw/paper_clusters.h"

namespace sq::core {
namespace {

TEST(Topology, SingleDeviceClusterHasOneTopology) {
  const auto c = sq::hw::paper_cluster(1);
  const auto topos = enumerate_topologies(c, true, 16);
  ASSERT_EQ(topos.size(), 1u);
  EXPECT_EQ(topos[0].groups.size(), 1u);
  EXPECT_EQ(topos[0].device_count(), 1);
}

TEST(Topology, TpMeshesOnHomogeneousNode) {
  // 4x V100 on one node: TP1 (4 stages), TP2 (2 stages), TP4 (1 stage).
  const auto c = sq::hw::paper_cluster(9);
  const auto topos = enumerate_topologies(c, true, 16);
  std::set<std::size_t> stage_counts;
  for (const auto& t : topos) stage_counts.insert(t.groups.size());
  EXPECT_TRUE(stage_counts.count(4));
  EXPECT_TRUE(stage_counts.count(2));
  EXPECT_TRUE(stage_counts.count(1));
}

TEST(Topology, NoTpWhenDisabled) {
  const auto c = sq::hw::paper_cluster(9);
  const auto topos = enumerate_topologies(c, false, 16);
  for (const auto& t : topos) {
    for (const auto& g : t.groups) EXPECT_EQ(g.devices.size(), 1u);
  }
}

TEST(Topology, PermutationsDedupedBySignature) {
  // Cluster 9: 4 identical V100s at TP1 -> exactly ONE distinct ordering.
  const auto c = sq::hw::paper_cluster(9);
  const auto topos = enumerate_topologies(c, false, 64);
  EXPECT_EQ(topos.size(), 1u);
}

TEST(Topology, HeterogeneousOrderingsEnumerated) {
  // Cluster 5 (3x T4 + 1x V100), no TP: orderings of the multiset
  // {T,T,T,V} = 4 distinct signatures.
  const auto c = sq::hw::paper_cluster(5);
  const auto topos = enumerate_topologies(c, false, 64);
  EXPECT_EQ(topos.size(), 4u);
  std::set<std::string> descs;
  for (const auto& t : topos) descs.insert(t.desc);
  EXPECT_EQ(descs.size(), topos.size());  // all distinct
}

TEST(Topology, EveryDeviceUsedExactlyOnce) {
  const auto c = sq::hw::paper_cluster(7);
  for (const auto& t : enumerate_topologies(c, true, 32)) {
    std::set<int> used;
    for (const auto& g : t.groups) {
      for (const int d : g.devices) EXPECT_TRUE(used.insert(d).second);
    }
    EXPECT_EQ(static_cast<int>(used.size()), c.device_count());
  }
}

TEST(Topology, TpGroupsNeverCrossNodes) {
  const auto c = sq::hw::paper_cluster(7);
  for (const auto& t : enumerate_topologies(c, true, 32)) {
    for (const auto& g : t.groups) {
      for (const int d : g.devices) {
        EXPECT_TRUE(c.same_node(g.devices.front(), d));
      }
    }
  }
}

TEST(Topology, CapIsRespected) {
  const auto c = sq::hw::paper_cluster(7);
  const auto topos = enumerate_topologies(c, true, 5);
  EXPECT_LE(topos.size(), 5u);
  EXPECT_GE(topos.size(), 1u);
}

TEST(Topology, NaturalTopologiesKeepDeviceOrder) {
  const auto c = sq::hw::paper_cluster(5);
  const auto topos = natural_topologies(c, false);
  ASSERT_EQ(topos.size(), 1u);
  ASSERT_EQ(topos[0].groups.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(topos[0].groups[static_cast<std::size_t>(i)].devices[0], i);
  }
}

TEST(Topology, DescribeNamesTypesAndTp) {
  const auto c = sq::hw::paper_cluster(9);
  Topology t;
  t.groups.push_back({{0, 1}});
  t.groups.push_back({{2}});
  const std::string d = describe(t, c);
  EXPECT_NE(d.find("V100xTP2"), std::string::npos);
  EXPECT_NE(d.find("->"), std::string::npos);
}

}  // namespace
}  // namespace sq::core
