// Property tests: the branch-and-bound solver cross-checked against
// exhaustive enumeration on randomly generated small MILPs, and the
// simplex against feasibility oracles.  These are the strongest guards we
// have on the GUROBI stand-in's correctness.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "solver/lp.h"
#include "solver/milp.h"
#include "tensor/rng.h"

namespace sq::solver {
namespace {

/// A random small MILP over `n` binaries: assignment-style equalities over
/// variable groups plus random <= knapsack rows.  Returns problem + the
/// binaries.
struct RandomMilp {
  LpProblem p;
  std::vector<int> binaries;
  int n = 0;
};

RandomMilp make_random_milp(std::uint64_t seed, int n_groups, int n_choices) {
  sq::tensor::Rng rng(seed);
  RandomMilp m;
  m.n = n_groups * n_choices;
  std::vector<std::vector<int>> z(static_cast<std::size_t>(n_groups));
  for (int g = 0; g < n_groups; ++g) {
    for (int c = 0; c < n_choices; ++c) {
      const int v = m.p.add_variable(rng.uniform(0.1, 3.0));
      z[static_cast<std::size_t>(g)].push_back(v);
      m.binaries.push_back(v);
    }
  }
  // One-hot per group.
  for (int g = 0; g < n_groups; ++g) {
    Constraint c;
    c.sense = Sense::kEq;
    c.rhs = 1.0;
    for (const int v : z[static_cast<std::size_t>(g)]) c.terms.push_back({v, 1.0});
    m.p.add_constraint(std::move(c));
  }
  // Two random knapsack rows coupling the groups.
  for (int row = 0; row < 2; ++row) {
    Constraint c;
    c.sense = Sense::kLe;
    double total = 0.0;
    for (const int v : m.binaries) {
      const double w = rng.uniform(0.0, 2.0);
      c.terms.push_back({v, w});
      total += w;
    }
    // Capacity between "roughly half the groups can take their heaviest
    // choice" and "everything fits" so both feasible and binding cases
    // appear across seeds.
    c.rhs = rng.uniform(0.25, 0.9) * total / n_choices;
    m.p.add_constraint(std::move(c));
  }
  return m;
}

/// Exhaustive optimum over all one-hot assignments (n_choices^n_groups).
double brute_force(const RandomMilp& m, int n_groups, int n_choices) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> x(static_cast<std::size_t>(m.p.num_vars()), 0.0);
  std::vector<int> pick(static_cast<std::size_t>(n_groups), 0);
  while (true) {
    std::fill(x.begin(), x.end(), 0.0);
    for (int g = 0; g < n_groups; ++g) {
      x[static_cast<std::size_t>(g * n_choices + pick[static_cast<std::size_t>(g)])] =
          1.0;
    }
    if (m.p.max_violation(x) <= 1e-9) {
      best = std::min(best, m.p.objective_value(x));
    }
    int g = 0;
    while (g < n_groups) {
      if (++pick[static_cast<std::size_t>(g)] < n_choices) break;
      pick[static_cast<std::size_t>(g)] = 0;
      ++g;
    }
    if (g == n_groups) break;
  }
  return best;
}

class MilpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpVsBruteForce, MatchesExhaustiveOptimum) {
  const int n_groups = 6, n_choices = 3;  // 729 assignments
  const RandomMilp m = make_random_milp(GetParam(), n_groups, n_choices);
  const double truth = brute_force(m, n_groups, n_choices);

  MilpOptions opts;
  opts.time_limit_s = 30.0;
  const MilpResult r = BranchAndBound(opts).solve(m.p, m.binaries);
  if (std::isinf(truth)) {
    EXPECT_EQ(r.status, MilpStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(r.status, MilpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(r.objective, truth, 1e-6) << "seed " << GetParam();
    EXPECT_LE(m.p.max_violation(r.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MilpVsBruteForce,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u,
                                           89u, 144u, 233u));

class SimplexFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexFeasibility, OptimalPointsAreFeasibleAndNoWorseThanSamples) {
  // Random LPs: whenever the simplex reports optimal, the point must be
  // feasible, and no randomly sampled feasible point may beat it.
  sq::tensor::Rng rng(GetParam());
  LpProblem p;
  const int n = 5;
  for (int i = 0; i < n; ++i) p.add_variable(rng.uniform(-1.0, 1.0));
  for (int r = 0; r < 4; ++r) {
    Constraint c;
    c.sense = Sense::kLe;
    for (int i = 0; i < n; ++i) c.terms.push_back({i, rng.uniform(0.0, 1.0)});
    c.rhs = rng.uniform(1.0, 5.0);
    p.add_constraint(std::move(c));
  }
  // Box the variables so the LP is always bounded.
  for (int i = 0; i < n; ++i) {
    p.add_constraint({{{i, 1.0}}, Sense::kLe, 10.0, ""});
  }
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal) << "seed " << GetParam();
  EXPECT_LE(p.max_violation(s.x), 1e-7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.uniform(0.0, 10.0);
    if (p.max_violation(x) <= 1e-9) {
      EXPECT_GE(p.objective_value(x), s.objective - 1e-7) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexFeasibility,
                         ::testing::Values(7u, 11u, 19u, 23u, 31u, 41u, 53u, 61u));

}  // namespace
}  // namespace sq::solver
