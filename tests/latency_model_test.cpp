// Tests for the phase-aware latency cost model: profiling, prediction
// fidelity on unseen workloads (the Fig. 8 right-panel property).
#include <gtest/gtest.h>

#include "cost/latency_model.h"
#include "model/registry.h"

namespace sq::cost {
namespace {

using sq::hw::Bitwidth;
using sq::hw::GpuType;
using sq::model::Phase;

constexpr Bitwidth kBits[] = {Bitwidth::kFp16, Bitwidth::kInt8, Bitwidth::kInt4,
                              Bitwidth::kInt3};

TEST(LatencyCostModel, ThrowsWithoutProfile) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  const LatencyCostModel lat(m);
  EXPECT_THROW(lat.predict_layer_us(GpuType::kV100, Phase::kPrefill, 4, 512,
                                    Bitwidth::kFp16),
               std::logic_error);
}

TEST(LatencyCostModel, ProfileRegistersAllCombos) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  LatencyCostModel lat(m);
  lat.profile_device(sq::hw::gpu_spec(GpuType::kV100), kBits);
  for (const Bitwidth b : kBits) {
    EXPECT_TRUE(lat.has_profile(GpuType::kV100, b, 1));
    EXPECT_TRUE(lat.has_profile(GpuType::kV100, b, 2));
  }
  EXPECT_FALSE(lat.has_profile(GpuType::kT4, Bitwidth::kFp16, 1));
  EXPECT_GT(lat.samples_taken(), 100u);
}

class FidelityFixture : public ::testing::Test {
 protected:
  FidelityFixture()
      : m_(sq::model::spec(sq::model::ModelId::kOpt30B)), lat_(m_) {
    lat_.profile_device(sq::hw::gpu_spec(GpuType::kV100), kBits);
    lat_.profile_device(sq::hw::gpu_spec(GpuType::kT4), kBits);
  }
  sq::model::LlmSpec m_;
  LatencyCostModel lat_;
  sq::sim::KernelModel gt_{{.ground_truth = true, .seed = 11}};
};

TEST_F(FidelityFixture, Fig8UnseenWorkloadErrorUnderSixPercent) {
  // 50 unseen workloads per device (the paper's protocol: batch 3/5/7,
  // past sequence 384/768, mixed precisions); average error must stay
  // below the paper's reported 6%.
  for (const GpuType t : {GpuType::kV100, GpuType::kT4}) {
    const auto g = sq::hw::gpu_spec(t);
    double err = 0.0;
    int n = 0;
    int i = 0;
    for (const std::uint64_t v : {3u, 5u, 7u}) {
      for (const std::uint64_t ctx : {384u, 768u, 1536u}) {
        for (const Bitwidth b : kBits) {
          const double pred = lat_.predict_layer_us(t, Phase::kDecode, v, ctx, b);
          const double act = gt_.layer_time_us(g, m_, Phase::kDecode, v, ctx, b);
          err += std::abs(pred - act) / act;
          ++n;
          ++i;
        }
      }
    }
    EXPECT_LT(err / n, 0.06) << sq::hw::to_string(t);
  }
}

TEST_F(FidelityFixture, PrefillPredictionsTrackGroundTruth) {
  double err = 0.0;
  int n = 0;
  for (const std::uint64_t v : {3u, 6u, 12u}) {
    for (const std::uint64_t s : {192u, 384u, 768u, 1536u}) {
      const double pred =
          lat_.predict_layer_us(GpuType::kV100, Phase::kPrefill, v, s, Bitwidth::kFp16);
      const double act = gt_.layer_time_us(sq::hw::gpu_spec(GpuType::kV100), m_,
                                           Phase::kPrefill, v, s, Bitwidth::kFp16);
      err += std::abs(pred - act) / act;
      ++n;
    }
  }
  EXPECT_LT(err / n, 0.10);
}

TEST_F(FidelityFixture, PredictionsNeverNegative) {
  EXPECT_GE(lat_.predict_layer_us(GpuType::kV100, Phase::kDecode, 1, 1, Bitwidth::kInt3),
            0.0);
}

TEST_F(FidelityFixture, PrefillGrowsInBatchAndSeq) {
  const double base =
      lat_.predict_layer_us(GpuType::kV100, Phase::kPrefill, 4, 512, Bitwidth::kFp16);
  EXPECT_GT(lat_.predict_layer_us(GpuType::kV100, Phase::kPrefill, 8, 512,
                                  Bitwidth::kFp16),
            base);
  EXPECT_GT(lat_.predict_layer_us(GpuType::kV100, Phase::kPrefill, 4, 1024,
                                  Bitwidth::kFp16),
            base);
}

TEST_F(FidelityFixture, TpProfilesAreDistinct) {
  const double tp1 =
      lat_.predict_layer_us(GpuType::kV100, Phase::kPrefill, 16, 2048, Bitwidth::kFp16, 1);
  const double tp4 =
      lat_.predict_layer_us(GpuType::kV100, Phase::kPrefill, 16, 2048, Bitwidth::kFp16, 4);
  EXPECT_GT(tp1, tp4 * 1.5);
}

TEST(LatencyCostModel, ProfilingIsIdempotent) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  LatencyCostModel lat(m);
  lat.profile_device(sq::hw::gpu_spec(GpuType::kT4), kBits);
  const auto samples = lat.samples_taken();
  lat.profile_device(sq::hw::gpu_spec(GpuType::kT4), kBits);
  EXPECT_EQ(lat.samples_taken(), samples);
}

}  // namespace
}  // namespace sq::cost
