// Tests for the offline serving engine.
#include <gtest/gtest.h>

#include "hw/paper_clusters.h"
#include "model/registry.h"
#include "runtime/engine.h"

namespace sq::runtime {
namespace {

using sq::hw::Bitwidth;

sq::sim::ExecutionPlan plan_for(const sq::model::LlmSpec& m, int stages, Bitwidth b) {
  sq::sim::ExecutionPlan p;
  const int per = m.n_layers / stages;
  for (int s = 0; s < stages; ++s) {
    p.stages.push_back({{s}, s * per, s + 1 == stages ? m.n_layers : (s + 1) * per});
  }
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), b);
  p.prefill_microbatch = 4;
  p.decode_microbatch = 16;
  return p;
}

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : m_(sq::model::spec(sq::model::ModelId::kOpt13B)),
        c_(sq::hw::paper_cluster(9)) {}
  sq::model::LlmSpec m_;
  sq::hw::Cluster c_;
};

TEST_F(EngineFixture, ServesBatchesAndAggregates) {
  const OfflineEngine eng(c_, m_, plan_for(m_, 4, Bitwidth::kInt8));
  std::vector<sq::sim::BatchWorkload> batches = {{16, 512, 32, 2048},
                                                 {16, 256, 16, 2048}};
  const ServeStats s = eng.serve(batches);
  ASSERT_TRUE(s.feasible) << s.failure;
  EXPECT_EQ(s.batches, 2u);
  EXPECT_GE(s.waves, 2u);
  EXPECT_NEAR(s.output_tokens, 16.0 * 32 + 16.0 * 16, 1e-9);
  EXPECT_GT(s.throughput_tok_s, 0.0);
  EXPECT_GT(s.total_seconds, 0.0);
}

TEST_F(EngineFixture, RejectsInvalidPlan) {
  auto p = plan_for(m_, 4, Bitwidth::kInt8);
  p.stages[1].layer_begin += 1;  // break contiguity
  const OfflineEngine eng(c_, m_, p);
  const ServeStats s = eng.serve({{8, 256, 16, 2048}});
  EXPECT_FALSE(s.feasible);
  EXPECT_NE(s.failure.find("invalid plan"), std::string::npos);
}

TEST_F(EngineFixture, ReportsHardOom) {
  const auto big = sq::model::spec(sq::model::ModelId::kOpt66B);
  sq::sim::ExecutionPlan p;
  p.stages.push_back({{0}, 0, big.n_layers});
  p.layer_bits.assign(static_cast<std::size_t>(big.n_layers), Bitwidth::kFp16);
  const OfflineEngine eng(sq::hw::paper_cluster(1), big, p);
  const ServeStats s = eng.serve({{8, 256, 16, 2048}});
  EXPECT_FALSE(s.feasible);
  EXPECT_NE(s.failure.find("OOM"), std::string::npos);
}

TEST_F(EngineFixture, ConcurrencyCapSplitsIntoWaves) {
  const OfflineEngine eng(c_, m_, plan_for(m_, 4, Bitwidth::kFp16));
  const ServeStats s = eng.serve({{256, 1500, 64, 2048}});
  ASSERT_TRUE(s.feasible) << s.failure;
  EXPECT_EQ(s.batches, 1u);
  EXPECT_GT(s.waves, 1u);
  EXPECT_EQ(s.capped_batches, 1u);
}

TEST_F(EngineFixture, CustomBackendIsSlower) {
  const auto plan = plan_for(m_, 4, Bitwidth::kInt8);
  const OfflineEngine vllm(c_, m_, plan, Backend::kVllmStyle);
  const OfflineEngine custom(c_, m_, plan, Backend::kCustom);
  EXPECT_LT(custom.backend_efficiency(), vllm.backend_efficiency());
  const std::vector<sq::sim::BatchWorkload> b = {{16, 512, 32, 2048}};
  EXPECT_LT(custom.serve(b).throughput_tok_s, vllm.serve(b).throughput_tok_s);
}

TEST_F(EngineFixture, ServeRequestsEndToEnd) {
  const OfflineEngine eng(c_, m_, plan_for(m_, 4, Bitwidth::kInt8));
  const auto reqs = sq::workload::sample(sq::workload::Dataset::kCnnDailyMail, 64, 5);
  const ServeStats s = eng.serve_requests(reqs, 32);
  ASSERT_TRUE(s.feasible) << s.failure;
  EXPECT_EQ(s.batches, 2u);
  EXPECT_GT(s.output_tokens, 0.0);
}

TEST_F(EngineFixture, DeterministicServing) {
  const OfflineEngine eng(c_, m_, plan_for(m_, 4, Bitwidth::kInt8));
  const std::vector<sq::sim::BatchWorkload> b = {{16, 512, 32, 2048}};
  EXPECT_EQ(eng.serve(b).total_seconds, eng.serve(b).total_seconds);
}

}  // namespace
}  // namespace sq::runtime
