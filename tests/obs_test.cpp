// Observability layer tests: instrument semantics, order-independent
// aggregation, registry concurrency under the shared thread pool (run
// under TSan in CI), exporter schema stability, and the core contract
// that metrics never feed back into results (engine ServeStats are
// bit-identical with metrics on vs off).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "hw/paper_clusters.h"
#include "model/registry.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/engine.h"
#include "workload/profile.h"

namespace sq::obs {
namespace {

/// Restores the global registry to a pristine disabled state around each
/// test (the registry is process-wide).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Registry::global().reset();
  }
};

TEST_F(ObsTest, CounterAddAndReset) {
  Counter& c = counter("t.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeTracksLastAndHighWater) {
  Gauge& g = gauge("t.gauge");
  g.set(1.5);
  g.set(9.25);
  g.set(3.0);
  EXPECT_EQ(g.last(), 3.0);
  EXPECT_EQ(g.max(), 9.25);
  EXPECT_EQ(g.sets(), 3u);
}

TEST_F(ObsTest, HistogramBucketsStatsAndLayouts) {
  Histogram& h = histogram("t.hist", BucketLayout::kPow2);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(1e9);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1e9);
  const auto counts = h.counts();
  EXPECT_EQ(counts.size(), layout_bounds(BucketLayout::kPow2).size() + 1);
  EXPECT_EQ(counts.back(), 1u);  // the 1e9 observation
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, 3u);
  // Every layout's bounds are strictly increasing (schema sanity).
  for (const auto layout : {BucketLayout::kTimeUs, BucketLayout::kSeconds,
                            BucketLayout::kPow2, BucketLayout::kRatio}) {
    const auto& b = layout_bounds(layout);
    ASSERT_FALSE(b.empty()) << layout_name(layout);
    EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  }
}

TEST_F(ObsTest, HistogramSumIsObservationOrderIndependent) {
  // Values chosen so floating-point summation order would matter; the
  // fixed-point accumulator must not.
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(0.1 * i + 1.0 / (i + 3));
  Histogram& fwd = histogram("t.sum_fwd", BucketLayout::kRatio);
  Histogram& rev = histogram("t.sum_rev", BucketLayout::kRatio);
  for (const double v : values) fwd.observe(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) rev.observe(*it);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(fwd.sum()),
            std::bit_cast<std::uint64_t>(rev.sum()));
}

TEST_F(ObsTest, HistogramLayoutMismatchThrows) {
  histogram("t.layout", BucketLayout::kTimeUs);
  EXPECT_THROW(histogram("t.layout", BucketLayout::kPow2), std::logic_error);
}

TEST_F(ObsTest, RegistryConcurrencyIsExactUnderThreadPool) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerTask = 2000;
  sq::common::ThreadPool pool(kThreads);
  // Every worker hammers the same three instruments plus a per-index one
  // (exercising both the fast path and creation-on-first-use under
  // contention).  Totals must come out exact.
  sq::common::parallel_for(&pool, kThreads, [&](std::size_t t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) {
      counter("t.shared").add();
      gauge("t.shared_gauge").set(static_cast<double>(t));
      histogram("t.shared_hist", BucketLayout::kPow2)
          .observe(static_cast<double>(i % 64));
      counter("t.per_thread." + std::to_string(t)).add();
    }
  });
  EXPECT_EQ(counter("t.shared").value(), kThreads * kPerTask);
  EXPECT_EQ(gauge("t.shared_gauge").max(), static_cast<double>(kThreads - 1));
  EXPECT_EQ(gauge("t.shared_gauge").sets(), kThreads * kPerTask);
  EXPECT_EQ(histogram("t.shared_hist", BucketLayout::kPow2).count(),
            kThreads * kPerTask);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counter("t.per_thread." + std::to_string(t)).value(), kPerTask);
  }
}

TEST_F(ObsTest, DisabledRegistryRecordsNothing) {
  set_enabled(false);
  EXPECT_FALSE(enabled());
  Registry::global().record_spans({Span{"dropped", 0.0, 1.0, {}}});
  EXPECT_TRUE(Registry::global().snapshot().spans.empty());
}

TEST_F(ObsTest, ResetKeepsInstrumentHandlesValid) {
  Counter& c = counter("t.survivor");
  c.add(7);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // handle still valid after reset
  EXPECT_EQ(counter("t.survivor").value(), 1u);
}

TEST_F(ObsTest, TraceSinkShiftsByBase) {
  TraceSink sink;
  sink.add(Span{"a", 1.0, 2.0, {}});
  sink.base_us = 100.0;
  sink.add(Span{"b", 1.0, 2.0, {}});
  ASSERT_EQ(sink.spans().size(), 2u);
  EXPECT_EQ(sink.spans()[0].start_us, 1.0);
  EXPECT_EQ(sink.spans()[1].start_us, 101.0);
  EXPECT_EQ(sink.spans()[1].end_us, 102.0);
}

// ---- Exporter ----------------------------------------------------------

TEST_F(ObsTest, HexfloatRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 123456.789e-7, 1e300, 5e-324, -2.5,
                         0.0}) {
    const std::string s = hexfloat(v);
    char* end = nullptr;
    const double back = std::strtod(s.c_str(), &end);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back), std::bit_cast<std::uint64_t>(v))
        << s;
  }
}

TEST_F(ObsTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_escape(std::string("x\x01y")), "x\\u0001y");
}

Snapshot sample_snapshot() {
  counter("z.last").add(3);
  counter("a.first").add(1);
  gauge("g.one").set(0.75);
  histogram("h.time", BucketLayout::kTimeUs).observe(42.0);
  TraceSink sink;
  sink.add(Span{"wave", 0.0, 10.0, {{"batch", 4.0}, {"aeta", 2.0}}});
  Registry::global().record_spans(sink.take());
  return Registry::global().snapshot();
}

TEST_F(ObsTest, ExportIsByteStableAndKeySorted) {
  const Snapshot snap = sample_snapshot();
  const std::string once = metrics_json(snap);
  const std::string twice = metrics_json(Registry::global().snapshot());
  EXPECT_EQ(once, twice);  // snapshot + render are deterministic

  // Schema marker and top-level key order.
  EXPECT_NE(once.find(kMetricsSchema), std::string::npos);
  const std::size_t c = once.find("\"counters\"");
  const std::size_t g = once.find("\"gauges\"");
  const std::size_t h = once.find("\"histograms\"");
  const std::size_t sc = once.find("\"schema\"");
  const std::size_t sp = once.find("\"spans\"");
  ASSERT_NE(c, std::string::npos);
  EXPECT_TRUE(c < g && g < h && h < sc && sc < sp) << once;
  // Instrument names sorted within their section.
  EXPECT_LT(once.find("a.first"), once.find("z.last"));
  // Span attributes key-sorted at export regardless of insertion order.
  EXPECT_LT(once.find("\"aeta\""), once.find("\"batch\""));
}

TEST_F(ObsTest, ExportedValuesRoundTrip) {
  const Snapshot snap = sample_snapshot();
  const std::string json = metrics_json(snap);
  // The histogram sum is rendered hexfloat: locate it and parse it back.
  const std::string key = "\"sum\": \"";
  const std::size_t at = json.find(key);
  ASSERT_NE(at, std::string::npos);
  const double back = std::strtod(json.c_str() + at + key.size(), nullptr);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
            std::bit_cast<std::uint64_t>(snap.histograms.front().sum));
  // Summary writer runs without touching registry state.
  std::ostringstream human;
  write_metrics_summary(snap, human);
  EXPECT_NE(human.str().find("a.first"), std::string::npos);
  EXPECT_EQ(metrics_json(Registry::global().snapshot()), json);
}

// ---- Metrics never feed back into results ------------------------------

std::string stats_fingerprint(const sq::runtime::ServeStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "ok=%d tput=%a tok=%a sec=%a waves=%llu bub=%a",
                s.feasible, s.throughput_tok_s, s.output_tokens, s.total_seconds,
                static_cast<unsigned long long>(s.waves), s.mean_bubble);
  return buf;
}

TEST_F(ObsTest, ServeStatsBitIdenticalWithMetricsOnVsOff) {
  const auto m = sq::model::spec(sq::model::ModelId::kQwen25_14B);
  const auto cluster = sq::hw::paper_cluster(3);
  const auto reqs =
      sq::workload::sample(sq::workload::Dataset::kCnnDailyMail, 48, 7);

  sq::sim::ExecutionPlan plan;
  plan.scheme = "uniform";
  const int half = m.n_layers / 2;
  sq::sim::StageSpec s0, s1;
  s0.devices = {0};
  s0.layer_begin = 0;
  s0.layer_end = half;
  s1.devices = {1};
  s1.layer_begin = half;
  s1.layer_end = m.n_layers;
  plan.stages = {s0, s1};
  plan.layer_bits.assign(static_cast<std::size_t>(m.n_layers),
                         sq::hw::Bitwidth::kInt4);
  plan.prefill_microbatch = 2;
  plan.decode_microbatch = 16;

  set_enabled(false);
  sq::runtime::OfflineEngine quiet(cluster, m, plan);
  const std::string off = stats_fingerprint(quiet.serve_requests(reqs, 32));

  set_enabled(true);
  sq::runtime::OfflineEngine loud(cluster, m, plan);
  loud.set_observe(true);
  const std::string on = stats_fingerprint(loud.serve_requests(reqs, 32));
  EXPECT_EQ(on, off);

  // And the instrumented run actually recorded something.
  const Snapshot snap = Registry::global().snapshot();
  EXPECT_FALSE(snap.spans.empty());
  bool saw_waves = false;
  for (const auto& c : snap.counters) {
    if (c.name == "runtime.waves") saw_waves = c.value > 0;
  }
  EXPECT_TRUE(saw_waves);
}

}  // namespace
}  // namespace sq::obs
