// Parameterized cross-module sweeps: pipeline-simulator invariants across
// (cluster, model, precision) combinations, and planner feasibility across
// the full Table III cluster set.
#include <gtest/gtest.h>

#include "core_test_util.h"
#include "runtime/engine.h"
#include "sim/pipeline.h"

namespace sq {
namespace {

using hw::Bitwidth;

struct SweepCase {
  int cluster;
  model::ModelId model;
  Bitwidth bits;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return "c" + std::to_string(info.param.cluster) + "_" +
         std::to_string(static_cast<int>(info.param.model)) + "_b" +
         std::to_string(hw::bits(info.param.bits));
}

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweep, SimulatorInvariantsHold) {
  const auto [cluster_id, model_id, bits] = GetParam();
  const auto m = model::spec(model_id);
  const auto cluster = hw::paper_cluster(cluster_id);

  // Even plan across all devices at the given uniform precision.
  sim::ExecutionPlan plan;
  const int n = cluster.device_count();
  for (int d = 0; d < n; ++d) {
    plan.stages.push_back(
        {{d}, d * m.n_layers / n, (d + 1) * m.n_layers / n});
  }
  plan.layer_bits.assign(static_cast<std::size_t>(m.n_layers), bits);
  plan.prefill_microbatch = 2;
  plan.decode_microbatch = 4;
  ASSERT_EQ(plan.validate(m, cluster), "");

  sim::BatchWorkload w{8, 384, 24, 2048};
  const sim::SimResult r = sim::simulate_batch(cluster, m, plan, w);
  if (r.oom) {
    // OOM must come with a concrete device and zeroed throughput.
    EXPECT_GE(r.oom_device, 0);
    EXPECT_EQ(r.throughput_tok_s, 0.0);
    return;
  }
  // Time accounting invariants.
  EXPECT_GT(r.prefill_us, 0.0);
  EXPECT_GT(r.decode_us, 0.0);
  EXPECT_NEAR(r.total_us, r.prefill_us + r.decode_us, 1.0);
  EXPECT_NEAR(r.throughput_tok_s, 8.0 * 24.0 / (r.total_us * 1e-6), 1e-6);
  EXPECT_GE(r.bubble_fraction, 0.0);
  EXPECT_LE(r.bubble_fraction, 1.0);
  // Stage reports cover every stage with positive work.
  ASSERT_EQ(r.stage_prefill_us.size(), static_cast<std::size_t>(n));
  for (const double t : r.stage_prefill_us) EXPECT_GT(t, 0.0);
  for (const double t : r.stage_decode_us) EXPECT_GT(t, 0.0);
  // Memory accounting covered every device once.
  EXPECT_EQ(r.memory.devices.size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    ClustersAndPrecisions, PipelineSweep,
    ::testing::Values(
        SweepCase{2, model::ModelId::kQwen25_14B, Bitwidth::kFp16},
        SweepCase{2, model::ModelId::kQwen25_14B, Bitwidth::kInt4},
        SweepCase{4, model::ModelId::kOpt13B, Bitwidth::kInt8},
        SweepCase{5, model::ModelId::kOpt13B, Bitwidth::kInt8},
        SweepCase{5, model::ModelId::kOpt30B, Bitwidth::kInt4},
        SweepCase{6, model::ModelId::kOpt13B, Bitwidth::kInt4},
        SweepCase{6, model::ModelId::kOpt13B, Bitwidth::kInt3},
        SweepCase{7, model::ModelId::kOpt30B, Bitwidth::kInt8},
        SweepCase{8, model::ModelId::kOpt13B, Bitwidth::kInt4},
        SweepCase{9, model::ModelId::kOpt30B, Bitwidth::kInt8},
        SweepCase{10, model::ModelId::kQwen25_32B, Bitwidth::kFp16},
        SweepCase{10, model::ModelId::kLlama33_70B, Bitwidth::kInt4}),
    case_name);

class PlannerClusterSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlannerClusterSweep, FindsAPlanOnEveryPaperCluster) {
  // A model sized to the cluster: the planner must produce a valid,
  // servable plan on every Table III cluster.
  const int cluster_id = GetParam();
  const model::ModelId mid =
      cluster_id == 1 ? model::ModelId::kQwen25_7B
      : cluster_id == 6 || cluster_id == 8 ? model::ModelId::kOpt13B
                                           : model::ModelId::kOpt30B;
  core::testutil::Harness h(mid, cluster_id, {16, 512, 32, 2048});
  const core::Planner planner(h.model, h.cluster, h.inputs.workload, h.latency,
                              h.quality);
  core::PlannerConfig cfg;
  cfg.ilp_time_limit_s = 2.0;
  cfg.max_microbatch_pairs = 1;
  cfg.max_topologies = 4;
  cfg.group_size = 8;
  cfg.custom_backend = true;  // INT3 available everywhere in this sweep
  const auto r = planner.plan(cfg);
  ASSERT_TRUE(r.feasible) << "cluster " << cluster_id << ": " << r.failure;
  EXPECT_EQ(r.plan.validate(h.model, h.cluster), "");
  const runtime::OfflineEngine engine(h.cluster, h.model, r.plan);
  const auto stats = engine.serve({{16, 512, 32, 2048}});
  EXPECT_TRUE(stats.feasible) << stats.failure;
  EXPECT_GT(stats.throughput_tok_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPaperClusters, PlannerClusterSweep,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace sq
