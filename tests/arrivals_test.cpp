// Tests for the seeded arrival-timeline generator and its spec grammar.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/arrivals.h"

namespace sq::workload {
namespace {

TEST(ArrivalSpec, EmptyStringParsesToEmptySpec) {
  const ArrivalParse p = parse_arrival_spec("");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_TRUE(p.spec.empty());
  EXPECT_EQ(p.spec.total_requests(), 0u);
}

TEST(ArrivalSpec, ParsesAllThreeKinds) {
  const ArrivalParse p =
      parse_arrival_spec("burst:8@0.5,uniform:4@1x2,poisson:16@2.5x0.5");
  ASSERT_TRUE(p.ok) << p.error;
  ASSERT_EQ(p.spec.segments.size(), 3u);
  EXPECT_EQ(p.spec.segments[0].kind, ArrivalSegment::Kind::kBurst);
  EXPECT_EQ(p.spec.segments[0].count, 8u);
  EXPECT_DOUBLE_EQ(p.spec.segments[0].start_s, 0.5);
  EXPECT_EQ(p.spec.segments[1].kind, ArrivalSegment::Kind::kUniform);
  EXPECT_DOUBLE_EQ(p.spec.segments[1].rate_per_s, 2.0);
  EXPECT_EQ(p.spec.segments[2].kind, ArrivalSegment::Kind::kPoisson);
  EXPECT_EQ(p.spec.segments[2].count, 16u);
  EXPECT_EQ(p.spec.total_requests(), 28u);
}

TEST(ArrivalSpec, ToSpecRoundTrips) {
  const std::string spec = "burst:8@0.5,uniform:4@1x2,poisson:16@2.5x0.5";
  const ArrivalParse p = parse_arrival_spec(spec);
  ASSERT_TRUE(p.ok) << p.error;
  const ArrivalParse again = parse_arrival_spec(p.spec.to_spec());
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.spec.to_spec(), p.spec.to_spec());
  ASSERT_EQ(again.spec.segments.size(), p.spec.segments.size());
  for (std::size_t i = 0; i < p.spec.segments.size(); ++i) {
    EXPECT_EQ(again.spec.segments[i].kind, p.spec.segments[i].kind);
    EXPECT_EQ(again.spec.segments[i].count, p.spec.segments[i].count);
    EXPECT_DOUBLE_EQ(again.spec.segments[i].start_s, p.spec.segments[i].start_s);
    EXPECT_DOUBLE_EQ(again.spec.segments[i].rate_per_s,
                     p.spec.segments[i].rate_per_s);
  }
}

TEST(ArrivalSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "gauss:4@0",        // unknown kind
      "burst:4",          // missing @<t>
      "burst:@1",         // missing count
      "burst:0@1",        // count < 1
      "burst:4@-1",       // negative start
      "burst:4@1x2",      // rate on a burst
      "uniform:4@1",      // missing rate
      "uniform:4@1x0",    // rate must be > 0
      "uniform:4@1x-3",   // negative rate
      "poisson:4@1x",     // empty rate
      "burst:4@1junk",    // trailing junk
      "burst:4.5@1",      // fractional count
      "burst:2000001@0",  // over the per-segment cap
      "burst",            // no payload at all
  };
  for (const char* s : bad) {
    const ArrivalParse p = parse_arrival_spec(s);
    EXPECT_FALSE(p.ok) << "accepted: " << s;
    EXPECT_FALSE(p.error.empty()) << s;
  }
}

TEST(ArrivalSpec, IgnoresEmptySegments) {
  const ArrivalParse p = parse_arrival_spec(",burst:2@0,,burst:3@1,");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.spec.segments.size(), 2u);
}

TEST(GenerateArrivals, BurstStampsEveryRequestAtStart) {
  const ArrivalParse p = parse_arrival_spec("burst:6@1.25");
  ASSERT_TRUE(p.ok);
  const auto trace = generate_arrivals(p.spec, Dataset::kCnnDailyMail, 7);
  ASSERT_EQ(trace.size(), 6u);
  for (const TimedRequest& t : trace) {
    EXPECT_DOUBLE_EQ(t.arrive_s, 1.25);
    EXPECT_GE(t.request.prompt_tokens, 1u);
    EXPECT_GE(t.request.output_tokens, 1u);
  }
}

TEST(GenerateArrivals, UniformSpacingMatchesRate) {
  const ArrivalParse p = parse_arrival_spec("uniform:5@2x4");
  ASSERT_TRUE(p.ok);
  const auto trace = generate_arrivals(p.spec, Dataset::kCnnDailyMail, 7);
  ASSERT_EQ(trace.size(), 5u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(trace[i].arrive_s, 2.0 + static_cast<double>(i) / 4.0, 1e-12);
  }
}

TEST(GenerateArrivals, PoissonGapsAccumulateFromStart) {
  const ArrivalParse p = parse_arrival_spec("poisson:32@3x2");
  ASSERT_TRUE(p.ok);
  const auto trace = generate_arrivals(p.spec, Dataset::kShareGpt, 11);
  ASSERT_EQ(trace.size(), 32u);
  EXPECT_GE(trace.front().arrive_s, 3.0);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrive_s, trace[i - 1].arrive_s);
  }
  // Mean gap should be in the right ballpark of 1/rate = 0.5 s.
  const double span = trace.back().arrive_s - 3.0;
  EXPECT_GT(span, 0.0);
  EXPECT_LT(span / 32.0, 2.0);
}

TEST(GenerateArrivals, TraceIsSortedAndSeedDeterministic) {
  const ArrivalParse p =
      parse_arrival_spec("poisson:16@0x8,burst:8@0.5,uniform:8@0.1x16");
  ASSERT_TRUE(p.ok);
  const auto a = generate_arrivals(p.spec, Dataset::kLoogle, 42);
  const auto b = generate_arrivals(p.spec, Dataset::kLoogle, 42);
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const TimedRequest& x, const TimedRequest& y) {
                               return x.arrive_s < y.arrive_s;
                             }));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrive_s, b[i].arrive_s);
    EXPECT_EQ(a[i].request.prompt_tokens, b[i].request.prompt_tokens);
    EXPECT_EQ(a[i].request.output_tokens, b[i].request.output_tokens);
  }
}

TEST(GenerateArrivals, DifferentSeedsDiffer) {
  const ArrivalParse p = parse_arrival_spec("poisson:32@0x4");
  ASSERT_TRUE(p.ok);
  const auto a = generate_arrivals(p.spec, Dataset::kCnnDailyMail, 1);
  const auto b = generate_arrivals(p.spec, Dataset::kCnnDailyMail, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].arrive_s != b[i].arrive_s ||
        a[i].request.prompt_tokens != b[i].request.prompt_tokens) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace sq::workload
