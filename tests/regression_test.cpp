// Tests for the least-squares fitter.
#include <gtest/gtest.h>

#include <vector>

#include "cost/regression.h"
#include "tensor/rng.h"

namespace sq::cost {
namespace {

TEST(LinearRegression, RecoversExactLinearModel) {
  // y = 3 + 2a - b on a grid.
  std::vector<double> x, y;
  for (double a = 0; a < 5; ++a) {
    for (double b = 0; b < 5; ++b) {
      x.insert(x.end(), {1.0, a, b});
      y.push_back(3.0 + 2.0 * a - b);
    }
  }
  LinearRegression reg;
  ASSERT_TRUE(reg.fit(x, y.size(), 3, y));
  EXPECT_NEAR(reg.coefficients()[0], 3.0, 1e-8);
  EXPECT_NEAR(reg.coefficients()[1], 2.0, 1e-8);
  EXPECT_NEAR(reg.coefficients()[2], -1.0, 1e-8);
  const double feats[] = {1.0, 10.0, 4.0};
  EXPECT_NEAR(reg.predict(feats), 3.0 + 20.0 - 4.0, 1e-7);
}

TEST(LinearRegression, HandlesNoisyData) {
  sq::tensor::Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(0, 10), b = rng.uniform(0, 10);
    x.insert(x.end(), {1.0, a, b});
    y.push_back(5.0 + 0.7 * a + 1.3 * b + rng.normal(0.0, 0.1));
  }
  LinearRegression reg;
  ASSERT_TRUE(reg.fit(x, y.size(), 3, y));
  EXPECT_NEAR(reg.coefficients()[1], 0.7, 0.02);
  EXPECT_NEAR(reg.coefficients()[2], 1.3, 0.02);
  EXPECT_LT(reg.training_mape(x, y.size(), 3, y), 0.02);
}

TEST(LinearRegression, CollinearFeaturesSurviveViaRidge) {
  // Second and third features identical: ridge keeps the solve stable and
  // predictions exact even though individual coefficients are not unique.
  std::vector<double> x, y;
  for (double a = 1; a <= 20; ++a) {
    x.insert(x.end(), {1.0, a, a});
    y.push_back(2.0 * a);
  }
  LinearRegression reg;
  ASSERT_TRUE(reg.fit(x, y.size(), 3, y, 1e-6));
  const double feats[] = {1.0, 7.0, 7.0};
  EXPECT_NEAR(reg.predict(feats), 14.0, 1e-3);
}

TEST(LinearRegression, EmptyInputFails) {
  LinearRegression reg;
  EXPECT_FALSE(reg.fit({}, 0, 0, {}));
}

TEST(LinearRegression, UnderdeterminedStillPredictsTrainingPoints) {
  // 2 samples, 3 features: ridge-regularized minimum-norm fit should at
  // least reproduce the training targets.
  const std::vector<double> x = {1.0, 2.0, 3.0, 1.0, 5.0, 1.0};
  const std::vector<double> y = {10.0, 20.0};
  LinearRegression reg;
  ASSERT_TRUE(reg.fit(x, 2, 3, y, 1e-8));
  EXPECT_NEAR(reg.predict(std::span<const double>(x).subspan(0, 3)), 10.0, 0.05);
  EXPECT_NEAR(reg.predict(std::span<const double>(x).subspan(3, 3)), 20.0, 0.05);
}

TEST(LinearRegression, MapeSkipsZeroTargets) {
  const std::vector<double> x = {1.0, 1.0};
  const std::vector<double> y = {0.0, 0.0};
  LinearRegression reg;
  ASSERT_TRUE(reg.fit(x, 2, 1, y));
  EXPECT_EQ(reg.training_mape(x, 2, 1, y), 0.0);
}

}  // namespace
}  // namespace sq::cost
