// Grammar fuzz tests for the CLI spec parsers: --faults, --jobs,
// --arrivals and --elastic.  Seeded valid generators must round-trip;
// seeded mutations and raw ASCII noise must either parse or reject with a
// one-line diagnostic — exceptions never escape any parser.  The parsers
// share one tokenizer (common/spec_util.h), so the whitespace/comma rules
// are asserted uniformly across grammars.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "elastic/membership.h"
#include "runtime/fleet.h"
#include "sim/faults.h"
#include "workload/arrivals.h"

namespace {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }
};

/// Charset biased toward the grammars' own separators so mutations probe
/// parser edges, not just unknown-character rejection.
char noise_char(Rng& rng) {
  constexpr char kBiased[] = ":@x+,.-0123456789abcdefghijklmnopqrstuvwxyz";
  if (rng.below(4) == 0) {
    return static_cast<char>(' ' + rng.below(95));
  }
  return kBiased[rng.below(sizeof(kBiased) - 1)];
}

std::string mutate(const std::string& input, Rng& rng) {
  std::string s = input;
  const int edits = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < edits; ++e) {
    const std::uint64_t op = rng.below(3);
    if (op == 0 && !s.empty()) {
      s[rng.below(s.size())] = noise_char(rng);          // replace
    } else if (op == 1 && !s.empty()) {
      s.erase(rng.below(s.size()), 1);                   // delete
    } else {
      s.insert(rng.below(s.size() + 1), 1, noise_char(rng));  // insert
    }
  }
  return s;
}

std::string random_noise(Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = rng.below(max_len);
  for (std::size_t i = 0; i < len; ++i) s += noise_char(rng);
  return s;
}

// ---------------------------------------------------------------- faults

TEST(SpecFuzz, ValidFaultSchedulesRoundTrip) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    sq::sim::FaultSchedule sched =
        sq::sim::random_fault_schedule(seed, 8, 60.0, 1 + seed % 6);
    sched.normalize();
    const std::string spec = sched.to_spec();
    const sq::sim::FaultParse p = sq::sim::parse_fault_spec(spec);
    ASSERT_TRUE(p.ok) << "seed " << seed << ": " << p.error << "\n" << spec;
    ASSERT_EQ(p.schedule.events.size(), sched.events.size()) << spec;
    EXPECT_EQ(p.schedule.to_spec(), spec) << "seed " << seed;
  }
}

TEST(SpecFuzz, MutatedFaultSpecsNeverThrow) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(0xFA015 ^ (seed * 1315423911ULL));
    sq::sim::FaultSchedule sched =
        sq::sim::random_fault_schedule(seed, 8, 60.0, 1 + seed % 4);
    sched.normalize();
    const std::string spec = mutate(sched.to_spec(), rng);
    sq::sim::FaultParse p;
    ASSERT_NO_THROW(p = sq::sim::parse_fault_spec(spec)) << spec;
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty()) << spec;
    }
  }
}

TEST(SpecFuzz, NoiseFaultSpecsNeverThrow) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(0x50DA ^ (seed * 2654435761ULL));
    const std::string spec = random_noise(rng, 64);
    sq::sim::FaultParse p;
    ASSERT_NO_THROW(p = sq::sim::parse_fault_spec(spec)) << spec;
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty()) << spec;
    }
  }
}

TEST(SpecFuzz, FaultSpecRejectsKnownBadShapes) {
  const char* bad[] = {
      "fail",           "fail:",         "fail:x@1",      "fail:1@",
      "fail:1@abc",     "fail:-1@1",     "slow:1@1",      "slow:1@1x0.5",
      "slow:1@1x",      "link:1@1",      "boom:1@1",      "fail:1@1x2",
      "fail:1@1+",      "fail:1@1+-2",   "slow:1@1+2",    "fail:1@1 trail",
  };
  for (const char* s : bad) {
    const sq::sim::FaultParse p = sq::sim::parse_fault_spec(s);
    EXPECT_FALSE(p.ok) << "accepted: " << s;
    EXPECT_FALSE(p.error.empty()) << s;
  }
}

// ------------------------------------------------------------------ jobs

std::string random_job_name(Rng& rng) {
  constexpr char kName[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
  std::string s;
  const std::size_t len = 1 + rng.below(12);
  for (std::size_t i = 0; i < len; ++i) s += kName[rng.below(sizeof(kName) - 1)];
  return s;
}

TEST(SpecFuzz, ValidJobsSpecsRoundTrip) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(0x1057 ^ (seed * 976369ULL));
    std::string spec;
    std::vector<std::string> names;
    std::vector<std::uint64_t> counts;
    const int n = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < n; ++i) {
      names.push_back(random_job_name(rng));
      counts.push_back(1 + rng.below(1000000));
      if (i) spec += ',';
      spec += names.back() + ":" + std::to_string(counts.back());
    }
    const sq::runtime::JobsParse p = sq::runtime::parse_jobs_spec(spec);
    ASSERT_TRUE(p.ok) << spec << ": " << p.error;
    ASSERT_EQ(p.items.size(), names.size()) << spec;
    for (std::size_t i = 0; i < names.size(); ++i) {
      EXPECT_EQ(p.items[i].name, names[i]);
      EXPECT_EQ(p.items[i].requests, counts[i]);
    }
  }
}

TEST(SpecFuzz, MutatedJobsSpecsNeverThrow) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(0xBAD10 ^ (seed * 31337ULL));
    std::string spec = "alpha:32,beta:8,gamma:512";
    spec = mutate(spec, rng);
    sq::runtime::JobsParse p;
    ASSERT_NO_THROW(p = sq::runtime::parse_jobs_spec(spec)) << spec;
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty()) << spec;
    }
    for (const auto& item : p.items) {
      // Whatever survives parsing satisfies the documented invariants.
      EXPECT_FALSE(item.name.empty()) << spec;
      EXPECT_GE(item.requests, 1u) << spec;
      EXPECT_LE(item.requests, 1000000u) << spec;
    }
  }
}

TEST(SpecFuzz, NoiseJobsSpecsNeverThrow) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(0x90B5 ^ (seed * 40503ULL));
    const std::string spec = random_noise(rng, 48);
    sq::runtime::JobsParse p;
    ASSERT_NO_THROW(p = sq::runtime::parse_jobs_spec(spec)) << spec;
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty()) << spec;
    }
  }
}

TEST(SpecFuzz, JobsSpecRejectsKnownBadShapes) {
  const char* bad[] = {
      "job",        ":4",        "job:",      "job:0",     "job:-3",
      "job:4x",     "job:4.5",   "a:b:3",     "job:1000001",
      "job: 4",     "job:99999999999999999999",
  };
  for (const char* s : bad) {
    const sq::runtime::JobsParse p = sq::runtime::parse_jobs_spec(s);
    EXPECT_FALSE(p.ok) << "accepted: " << s;
    EXPECT_FALSE(p.error.empty()) << s;
  }
}

// -------------------------------------------------------------- arrivals

TEST(SpecFuzz, ValidArrivalSpecsRoundTrip) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(0xA331 ^ (seed * 69069ULL));
    sq::workload::ArrivalSpec spec;
    const int n = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < n; ++i) {
      sq::workload::ArrivalSegment seg;
      const std::uint64_t kind = rng.below(3);
      seg.kind = kind == 0 ? sq::workload::ArrivalSegment::Kind::kBurst
                 : kind == 1 ? sq::workload::ArrivalSegment::Kind::kUniform
                             : sq::workload::ArrivalSegment::Kind::kPoisson;
      seg.count = 1 + rng.below(1000000);
      seg.start_s = static_cast<double>(rng.below(10000)) / 100.0;
      if (seg.kind != sq::workload::ArrivalSegment::Kind::kBurst) {
        seg.rate_per_s = static_cast<double>(1 + rng.below(6400)) / 64.0;
      }
      spec.segments.push_back(seg);
    }
    const std::string text = spec.to_spec();
    const sq::workload::ArrivalParse p = sq::workload::parse_arrival_spec(text);
    ASSERT_TRUE(p.ok) << text << ": " << p.error;
    EXPECT_EQ(p.spec.to_spec(), text) << "seed " << seed;
    EXPECT_EQ(p.spec.total_requests(), spec.total_requests());
  }
}

TEST(SpecFuzz, MutatedArrivalSpecsNeverThrow) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(0xA77 ^ (seed * 2246822519ULL));
    std::string spec = "burst:16@0,uniform:8@2x4,poisson:32@5x0.5";
    spec = mutate(spec, rng);
    sq::workload::ArrivalParse p;
    ASSERT_NO_THROW(p = sq::workload::parse_arrival_spec(spec)) << spec;
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty()) << spec;
    } else {
      for (const auto& seg : p.spec.segments) {
        EXPECT_GE(seg.count, 1u) << spec;
        EXPECT_GE(seg.start_s, 0.0) << spec;
        if (seg.kind != sq::workload::ArrivalSegment::Kind::kBurst) {
          EXPECT_GT(seg.rate_per_s, 0.0) << spec;
        }
      }
    }
  }
}

TEST(SpecFuzz, NoiseArrivalSpecsNeverThrow) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(0xA001 ^ (seed * 362437ULL));
    const std::string spec = random_noise(rng, 64);
    sq::workload::ArrivalParse p;
    ASSERT_NO_THROW(p = sq::workload::parse_arrival_spec(spec)) << spec;
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty()) << spec;
    }
  }
}

// ------------------------------------------------------------ membership

TEST(SpecFuzz, ValidMembershipTimelinesRoundTrip) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const sq::elastic::MembershipTimeline t = sq::elastic::random_membership(
        seed, 300.0, 1 + static_cast<int>(seed % 6));
    const std::string spec = t.to_spec();
    const sq::elastic::MembershipParse p =
        sq::elastic::parse_membership_spec(spec);
    ASSERT_TRUE(p.ok) << "seed " << seed << ": " << p.error << "\n" << spec;
    ASSERT_EQ(p.timeline.events.size(), t.events.size()) << spec;
    EXPECT_EQ(p.timeline.to_spec(), spec) << "seed " << seed;
  }
}

TEST(SpecFuzz, MutatedMembershipSpecsNeverThrow) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(0xE1A5 ^ (seed * 748291ULL));
    std::string spec = "price:T4=0.35@0,join:2xT4@12.5,leave:node1@30";
    spec = mutate(spec, rng);
    sq::elastic::MembershipParse p;
    ASSERT_NO_THROW(p = sq::elastic::parse_membership_spec(spec)) << spec;
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty()) << spec;
    } else {
      for (const auto& e : p.timeline.events) {
        EXPECT_GE(e.at_us, 0.0) << spec;
        if (e.kind == sq::elastic::MemberEventKind::kJoin) {
          EXPECT_GE(e.count, 1) << spec;
          EXPECT_LE(e.count, 64) << spec;
        }
        if (e.kind == sq::elastic::MemberEventKind::kPrice) {
          EXPECT_GT(e.price, 0.0) << spec;
        }
      }
    }
  }
}

TEST(SpecFuzz, NoiseMembershipSpecsNeverThrow) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(0x3145 ^ (seed * 104729ULL));
    const std::string spec = random_noise(rng, 64);
    sq::elastic::MembershipParse p;
    ASSERT_NO_THROW(p = sq::elastic::parse_membership_spec(spec)) << spec;
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty()) << spec;
    }
  }
}

TEST(SpecFuzz, MembershipSpecRejectsKnownBadShapes) {
  const char* bad[] = {
      "join",           "join:2xT4",       "join:xT4@1",   "join:0xT4@1",
      "join:65xT4@1",   "join:2xQ6000@1",  "join:2T4@1",   "join:-2xT4@1",
      "leave:@1",       "leave:node@1",    "leave:-1@1",   "leave:1",
      "price:T4@1",     "price:T4=@1",     "price:T4=0@1", "price:T4=-1@1",
      "price:=2@1",     "join:2xT4@-1",    "grow:2xT4@1",  "join:2 xT4@1",
      "join:2xT4@1 0",
  };
  for (const char* s : bad) {
    const sq::elastic::MembershipParse p = sq::elastic::parse_membership_spec(s);
    EXPECT_FALSE(p.ok) << "accepted: " << s;
    EXPECT_FALSE(p.error.empty()) << s;
  }
}

// ---------------------------------------------- unified tokenization rules

// All spec grammars run on common/spec_util.h: whitespace AROUND items and
// empty items (trailing/doubled commas) are tolerated everywhere, while
// whitespace INSIDE an item is an error everywhere.
TEST(SpecFuzz, TokenizationAcceptsSurroundingWhitespaceEverywhere) {
  EXPECT_TRUE(sq::sim::parse_fault_spec(" fail:1@1 ,\tslow:2@3x2.5 , ").ok);
  EXPECT_TRUE(sq::runtime::parse_jobs_spec(" alpha:4 ,\tbeta:8 , ").ok);
  EXPECT_TRUE(
      sq::elastic::parse_membership_spec(" join:2xT4@1 ,\tprice:V100=1.5@2 , ")
          .ok);
}

TEST(SpecFuzz, TokenizationRejectsEmbeddedWhitespaceEverywhere) {
  EXPECT_FALSE(sq::sim::parse_fault_spec("fail:1@1 +2").ok);
  EXPECT_FALSE(sq::sim::parse_fault_spec("fail: 1@1").ok);
  EXPECT_FALSE(sq::runtime::parse_jobs_spec("alpha :4").ok);
  EXPECT_FALSE(sq::runtime::parse_jobs_spec("alpha:4 8").ok);
  EXPECT_FALSE(sq::elastic::parse_membership_spec("join:2xT4@ 1").ok);
  EXPECT_FALSE(sq::elastic::parse_membership_spec("price:T4 =1.5@2").ok);
}

}  // namespace
