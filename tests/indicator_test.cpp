// Tests for the quantization-sensitivity indicators, including the
// Theorem 1 variance bound checked against measured output variance.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/indicator.h"
#include "tensor/ops.h"

namespace sq::quant {
namespace {

using sq::hw::Bitwidth;
using sq::tensor::Tensor;

Tensor randn(std::size_t r, std::size_t c, std::uint64_t seed, float sd) {
  sq::tensor::Rng rng(seed);
  Tensor t(r, c);
  t.fill_normal(rng, 0.0f, sd);
  return t;
}

TEST(OperatorStats, ExtractsMoments) {
  const float wv[] = {-0.2f, 0.1f, 0.3f, -0.1f};
  const float xv[] = {1.0f, 3.0f};
  const Tensor w(2, 2, wv), x(1, 2, xv);
  const OperatorStats s = operator_stats(w, x);
  EXPECT_EQ(s.weight_dim, 4u);
  EXPECT_FLOAT_EQ(s.w_min, -0.2f);
  EXPECT_FLOAT_EQ(s.w_max, 0.3f);
  EXPECT_DOUBLE_EQ(s.x_mean, 2.0);
  EXPECT_DOUBLE_EQ(s.x_var, 1.0);
}

TEST(GofX, DeterministicVsStochastic) {
  OperatorStats s;
  s.x_mean = 2.0;
  s.x_var = 4.0;
  EXPECT_DOUBLE_EQ(g_of_x(s, Rounding::kDeterministic), 1.0);       // Var/4
  EXPECT_DOUBLE_EQ(g_of_x(s, Rounding::kStochastic), 8.0 / 6.0);    // (E^2+Var)/6
}

TEST(VarianceIndicator, Fp16IsZero) {
  OperatorStats s{1024, -0.1f, 0.1f, 0.0, 1.0};
  EXPECT_EQ(operator_variance_indicator(s, Bitwidth::kFp16, Scheme::kSymmetric,
                                        Rounding::kDeterministic),
            0.0);
}

TEST(VarianceIndicator, MonotoneInBitwidth) {
  OperatorStats s{4096, -0.2f, 0.2f, 0.1, 0.8};
  double prev = 0.0;
  for (const Bitwidth b : {Bitwidth::kInt8, Bitwidth::kInt4, Bitwidth::kInt3}) {
    const double v = operator_variance_indicator(s, b, Scheme::kSymmetric,
                                                 Rounding::kDeterministic);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(VarianceIndicator, ScalesWithWeightDim) {
  OperatorStats a{1000, -0.1f, 0.1f, 0.0, 1.0};
  OperatorStats b = a;
  b.weight_dim = 2000;
  const double va = operator_variance_indicator(a, Bitwidth::kInt4, Scheme::kSymmetric,
                                                Rounding::kDeterministic);
  const double vb = operator_variance_indicator(b, Bitwidth::kInt4, Scheme::kSymmetric,
                                                Rounding::kDeterministic);
  EXPECT_DOUBLE_EQ(vb, 2.0 * va);
}

TEST(VarianceIndicator, LayerSumsOperators) {
  OperatorStats s{1024, -0.1f, 0.1f, 0.0, 1.0};
  const OperatorStats ops[] = {s, s, s};
  const double one = operator_variance_indicator(s, Bitwidth::kInt4, Scheme::kSymmetric,
                                                 Rounding::kDeterministic);
  const double layer = layer_variance_indicator(ops, Bitwidth::kInt4, Scheme::kSymmetric,
                                                Rounding::kDeterministic);
  EXPECT_NEAR(layer, 3.0 * one, 1e-12);
}

TEST(Theorem1, PredictsMeasuredOutputVarianceOrder) {
  // Empirical check of the Theorem 1 structure: the *added* output variance
  // of a quantized linear operator grows ~ S(b)^2, so int3 adds ~4x the
  // int4 variance.  We measure actual output differences.
  const std::size_t d = 64, n = 256;
  const Tensor w = randn(d, d, 1, 0.08f);
  const Tensor x = randn(n, d, 2, 1.0f);
  const Tensor ref = sq::tensor::matmul(x, w);

  auto added_var = [&](Bitwidth b) {
    const auto flat = w.data();
    const auto wq = fake_quantize(flat, b, Scheme::kSymmetric, Rounding::kDeterministic);
    const Tensor wqt(d, d, wq);
    const Tensor out = sq::tensor::matmul(x, wqt);
    return sq::tensor::mse(out, ref);
  };
  const double v4 = added_var(Bitwidth::kInt4);
  const double v3 = added_var(Bitwidth::kInt3);
  const double v8 = added_var(Bitwidth::kInt8);
  // S(3)/S(4) = 7/3 -> variance ratio ~ (7/3)^2 ~ 5.4; allow wide band.
  EXPECT_GT(v3 / v4, 2.5);
  EXPECT_LT(v3 / v4, 12.0);
  EXPECT_LT(v8, v4);
}

TEST(HessianProbe, TopEigenvalueOfKnownMatrix) {
  // X = I (4x4): H = 2 X^T X = 2I, lambda_max = 2.
  Tensor x(4, 4);
  for (std::size_t i = 0; i < 4; ++i) x.at(i, i) = 1.0f;
  const HessianProbe p = hessian_top_eigenvalue(x);
  EXPECT_NEAR(p.lambda_max, 2.0, 1e-4);
  EXPECT_GT(p.iterations, 0);
}

TEST(HessianProbe, DominantDirection) {
  // One feature has much larger magnitude: lambda ~ 2 * sum x_i^2 over it.
  Tensor x(100, 3);
  sq::tensor::Rng rng(5);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = static_cast<float>(rng.normal(0.0, 10.0));
    x.at(i, 1) = static_cast<float>(rng.normal(0.0, 0.1));
    x.at(i, 2) = static_cast<float>(rng.normal(0.0, 0.1));
  }
  double col0 = 0.0;
  for (std::size_t i = 0; i < 100; ++i) col0 += x.at(i, 0) * x.at(i, 0);
  const HessianProbe p = hessian_top_eigenvalue(x);
  EXPECT_NEAR(p.lambda_max, 2.0 * col0, 0.02 * 2.0 * col0);
}

TEST(HessianIndicator, ZeroAtFp16AndMonotone) {
  const Tensor w = randn(32, 32, 7, 0.1f);
  const Tensor x = randn(64, 32, 8, 1.0f);
  EXPECT_EQ(hessian_indicator(w, x, Bitwidth::kFp16, Scheme::kSymmetric), 0.0);
  const double h8 = hessian_indicator(w, x, Bitwidth::kInt8, Scheme::kSymmetric);
  const double h4 = hessian_indicator(w, x, Bitwidth::kInt4, Scheme::kSymmetric);
  const double h3 = hessian_indicator(w, x, Bitwidth::kInt3, Scheme::kSymmetric);
  EXPECT_LT(h8, h4);
  EXPECT_LT(h4, h3);
}

TEST(RandomIndicatorTable, MonotoneWithinLayer) {
  const Bitwidth bits[] = {Bitwidth::kFp16, Bitwidth::kInt8, Bitwidth::kInt4,
                           Bitwidth::kInt3};
  const IndicatorTable t = random_indicator_table(10, bits, 42);
  ASSERT_EQ(t.values.size(), 10u);
  for (std::size_t l = 0; l < 10; ++l) {
    EXPECT_EQ(t.at(l, Bitwidth::kFp16), 0.0);
    EXPECT_LE(t.at(l, Bitwidth::kInt8), t.at(l, Bitwidth::kInt4));
    EXPECT_LE(t.at(l, Bitwidth::kInt4), t.at(l, Bitwidth::kInt3));
  }
}

TEST(RandomIndicatorTable, SeededReproducible) {
  const Bitwidth bits[] = {Bitwidth::kInt8, Bitwidth::kInt4};
  const IndicatorTable a = random_indicator_table(5, bits, 1);
  const IndicatorTable b = random_indicator_table(5, bits, 1);
  const IndicatorTable c = random_indicator_table(5, bits, 2);
  EXPECT_EQ(a.values, b.values);
  EXPECT_NE(a.values, c.values);
}

TEST(IndicatorTable, ThrowsOnUnknownBitwidth) {
  const Bitwidth bits[] = {Bitwidth::kInt8};
  const IndicatorTable t = random_indicator_table(2, bits, 3);
  EXPECT_THROW(t.at(0, Bitwidth::kInt3), std::out_of_range);
}

}  // namespace
}  // namespace sq::quant
