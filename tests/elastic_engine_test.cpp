// Integration tests for the elastic fleet engine: membership-driven
// re-planning, live migration vs drain vs restart of in-flight requests,
// the price-aware autoscaler, fault composition, the cost ledger and the
// bit-determinism contract across scheduler thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "elastic/elastic_engine.h"
#include "elastic/membership.h"
#include "hw/cluster.h"
#include "model/registry.h"
#include "runtime/fleet.h"
#include "sim/faults.h"
#include "workload/arrivals.h"

namespace sq::elastic {
namespace {

using sq::hw::Bitwidth;
using sq::runtime::FleetJob;
using sq::runtime::ReplicaGroup;
using sq::workload::TimedRequest;

/// One node of two V100s: big enough for OPT-13B at INT8 split in two.
sq::hw::Cluster base_cluster() {
  sq::hw::Node n;
  n.name = "node-v100-0";
  n.gpu_type = sq::hw::GpuType::kV100;
  n.gpu_count = 2;
  n.intra_gbps = 300.0;
  return sq::hw::Cluster("elastic-base", {n}, 800.0);
}

/// Even pipeline over the first `stages` devices at one bitwidth.
sq::sim::ExecutionPlan plan_over(const sq::model::LlmSpec& m, int stages,
                                 Bitwidth b) {
  sq::sim::ExecutionPlan p;
  const int per = m.n_layers / stages;
  for (int s = 0; s < stages; ++s) {
    p.stages.push_back(
        {{s}, s * per, s + 1 == stages ? m.n_layers : (s + 1) * per});
  }
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), b);
  p.prefill_microbatch = 4;
  p.decode_microbatch = 16;
  return p;
}

/// Deterministic synthetic replanner: an even pipeline over up to two
/// devices of whatever cluster membership produced, predicting throughput
/// proportional to the devices it can actually use.  Keeps the tests
/// independent of the real planner's runtime.
ElasticReplanner test_replanner(const sq::model::LlmSpec& m) {
  return [&m](const sq::hw::Cluster& c, int) {
    ElasticReplanOutcome o;
    if (c.device_count() < 1) {
      o.failure = "no devices";
      return o;
    }
    const int stages = std::min(2, c.device_count());
    o.plan = plan_over(m, stages, Bitwidth::kInt8);
    o.predicted_tok_s = 100.0 * stages;
    o.feasible = true;
    return o;
  };
}

/// `n` identical requests at t=0 (plus a tail that keeps serving busy
/// long enough for mid-run membership events to land in-flight).
std::vector<TimedRequest> burst(int n, std::uint64_t prompt = 512,
                                std::uint64_t output = 96) {
  std::vector<TimedRequest> t;
  for (int i = 0; i < n; ++i) {
    TimedRequest tr;
    tr.arrive_s = 0.0;
    tr.request.prompt_tokens = prompt;
    tr.request.output_tokens = output;
    t.push_back(tr);
  }
  return t;
}

class ElasticFixture : public ::testing::Test {
 protected:
  ElasticFixture() : model_(sq::model::spec(sq::model::ModelId::kOpt13B)) {
    ReplicaGroup rg;
    rg.cluster = base_cluster();
    rg.plan = plan_over(model_, 2, Bitwidth::kInt8);
    rg.predicted_tok_s = 200.0;
    groups_.push_back(std::move(rg));
  }

  ElasticFleetEngine engine() const {
    return ElasticFleetEngine(model_, groups_);
  }

  ElasticOptions options(const MembershipTimeline* t,
                         MigrationPolicy policy = MigrationPolicy::kAuto,
                         bool autoscale = false) const {
    ElasticOptions o;
    o.timeline = t;
    o.replan = test_replanner(model_);
    o.migration = policy;
    o.autoscale.enabled = autoscale;
    return o;
  }

  static std::vector<FleetJob> one_job(std::vector<TimedRequest> arrivals) {
    FleetJob job;
    job.name = "job-0";
    job.arrivals = std::move(arrivals);
    return {std::move(job)};
  }

  sq::model::LlmSpec model_;
  std::vector<ReplicaGroup> groups_;
};

TEST(ElasticPolicy, MigrationPolicyStringsRoundTrip) {
  for (const auto p : {MigrationPolicy::kAuto, MigrationPolicy::kMigrate,
                       MigrationPolicy::kDrain, MigrationPolicy::kRestart}) {
    MigrationPolicy back = MigrationPolicy::kAuto;
    ASSERT_TRUE(migration_policy_from_string(to_string(p), &back));
    EXPECT_EQ(back, p);
  }
  MigrationPolicy out = MigrationPolicy::kDrain;
  EXPECT_FALSE(migration_policy_from_string("teleport", &out));
  EXPECT_EQ(out, MigrationPolicy::kDrain);  // untouched on failure
}

TEST_F(ElasticFixture, EmptyTimelineDelegatesToFleetEngine) {
  const ElasticStats es = engine().serve(one_job(burst(8)), options(nullptr));
  ASSERT_TRUE(es.feasible) << es.failure;
  const sq::runtime::FleetEngine fleet(model_, groups_);
  const sq::runtime::FleetStats fs = fleet.serve(one_job(burst(8)), {});
  ASSERT_TRUE(fs.feasible) << fs.failure;
  EXPECT_EQ(es.fleet.output_tokens, fs.output_tokens);
  EXPECT_EQ(es.fleet.makespan_s, fs.makespan_s);
  EXPECT_EQ(es.fleet.aggregate_tok_s, fs.aggregate_tok_s);
  EXPECT_EQ(es.fleet.events, fs.events);
  EXPECT_EQ(es.events_applied, 0u);
  EXPECT_EQ(es.replans, 0u);
  // The cost ledger still runs: devices were held for the makespan.
  EXPECT_GT(es.dollars, 0.0);
  EXPECT_GT(es.tokens_per_dollar, 0.0);
}

TEST_F(ElasticFixture, NonContinuousJobIsAStructuralError) {
  const MembershipTimeline t =
      parse_membership_spec("join:1xV100@1").timeline;
  FleetJob batch_job;
  batch_job.name = "batch";
  batch_job.batches = {{8, 512, 32, 2048}};
  const ElasticStats es = engine().serve({batch_job}, options(&t));
  EXPECT_FALSE(es.feasible);
  EXPECT_NE(es.failure.find("continuous"), std::string::npos) << es.failure;
}

TEST_F(ElasticFixture, MultipleGroupsAreAStructuralError) {
  const MembershipTimeline t =
      parse_membership_spec("join:1xV100@1").timeline;
  auto two = groups_;
  two.push_back(groups_[0]);
  const ElasticFleetEngine eng(model_, two);
  const ElasticStats es = eng.serve(one_job(burst(4)), options(&t));
  EXPECT_FALSE(es.feasible);
  EXPECT_NE(es.failure.find("replica group"), std::string::npos) << es.failure;
}

TEST_F(ElasticFixture, JoinIsAcceptedAndTriggersAReplan) {
  const MembershipTimeline t =
      parse_membership_spec("join:2xV100@2").timeline;
  const ElasticStats es = engine().serve(one_job(burst(48)), options(&t));
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_EQ(es.events_applied, 1u);
  EXPECT_EQ(es.joins_offered, 1u);
  EXPECT_EQ(es.joins_accepted, 1u);  // autoscaler off: unconditional
  EXPECT_EQ(es.replans, 1u);
  EXPECT_EQ(es.fleet.jobs_completed, 1u);
  const auto& rs = es.fleet.jobs[0].continuous;
  EXPECT_EQ(rs.completed, 48u);
  EXPECT_EQ(rs.lost, 0u);
}

TEST_F(ElasticFixture, LeaveMigratesInFlightRequestsLive) {
  const MembershipTimeline t = parse_membership_spec("leave:1@2").timeline;
  const ElasticStats es = engine().serve(one_job(burst(48)),
                                         options(&t, MigrationPolicy::kAuto));
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_EQ(es.leaves, 1u);
  EXPECT_EQ(es.replans, 1u);
  EXPECT_GT(es.migrations, 0u);
  EXPECT_GT(es.migrated_kv_bytes, 0.0);
  EXPECT_GT(es.migration_s, 0.0);
  EXPECT_EQ(es.restarts, 0u);
  EXPECT_EQ(es.drains, 0u);
  const auto& rs = es.fleet.jobs[0].continuous;
  EXPECT_EQ(rs.completed, 48u);
  EXPECT_EQ(rs.lost, 0u);
}

TEST_F(ElasticFixture, RestartPolicyLosesProgressAndIsSlower) {
  const MembershipTimeline t = parse_membership_spec("leave:1@2").timeline;
  const ElasticStats mig = engine().serve(one_job(burst(48)),
                                          options(&t, MigrationPolicy::kAuto));
  const ElasticStats rst = engine().serve(
      one_job(burst(48)), options(&t, MigrationPolicy::kRestart));
  ASSERT_TRUE(mig.feasible) << mig.failure;
  ASSERT_TRUE(rst.feasible) << rst.failure;
  EXPECT_EQ(rst.migrations, 0u);
  EXPECT_GT(rst.restarts, 0u);
  // Restarted prefill+decode work is redone: same tokens, more time.
  EXPECT_EQ(rst.fleet.output_tokens, mig.fleet.output_tokens);
  EXPECT_GT(rst.fleet.makespan_s, mig.fleet.makespan_s);
  EXPECT_LT(rst.fleet.aggregate_tok_s, mig.fleet.aggregate_tok_s);
}

TEST_F(ElasticFixture, DrainFinishesInFlightOnTheOldPlan) {
  const MembershipTimeline t = parse_membership_spec("leave:1@2").timeline;
  const ElasticStats es = engine().serve(one_job(burst(48)),
                                         options(&t, MigrationPolicy::kDrain));
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_GT(es.drains, 0u);
  EXPECT_EQ(es.migrations, 0u);
  EXPECT_EQ(es.restarts, 0u);
  EXPECT_EQ(es.replans, 1u);
  const auto& rs = es.fleet.jobs[0].continuous;
  EXPECT_EQ(rs.completed, 48u);
  EXPECT_EQ(rs.lost, 0u);
}

TEST_F(ElasticFixture, LeaveEmptyingTheClusterFailsWithTypedError) {
  const MembershipTimeline t =
      parse_membership_spec("leave:node0@2").timeline;
  const ElasticStats es = engine().serve(one_job(burst(48)), options(&t));
  // Structural feasibility holds; the JOB fails with the degrade_cluster
  // diagnostic, every unfinished request is lost.
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_EQ(es.fleet.jobs_completed, 0u);
  EXPECT_FALSE(es.fleet.jobs[0].completed);
  EXPECT_NE(es.fleet.jobs[0].failure.find("excludes every device"),
            std::string::npos)
      << es.fleet.jobs[0].failure;
  const auto& rs = es.fleet.jobs[0].continuous;
  EXPECT_EQ(rs.completed + rs.lost, rs.submitted);
  EXPECT_GT(rs.lost, 0u);
}

TEST_F(ElasticFixture, LeaveOfUnknownDeviceIsIgnoredGracefully) {
  const MembershipTimeline t = parse_membership_spec("leave:17@2").timeline;
  const ElasticStats es = engine().serve(one_job(burst(16)), options(&t));
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_EQ(es.leaves, 1u);
  EXPECT_EQ(es.replans, 0u);
  EXPECT_EQ(es.fleet.jobs_completed, 1u);
  bool logged = false;
  for (const auto& e : es.events) {
    if (e.find("leave ignored") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged);
}

TEST_F(ElasticFixture, AutoscalerRejectsJoinBelowBacklogThreshold) {
  const MembershipTimeline t =
      parse_membership_spec("join:2xV100@2").timeline;
  ElasticOptions o = options(&t, MigrationPolicy::kAuto, /*autoscale=*/true);
  o.autoscale.join_backlog = 100000;  // Never enough backlog.
  const ElasticStats es = engine().serve(one_job(burst(48)), o);
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_EQ(es.joins_offered, 1u);
  EXPECT_EQ(es.joins_accepted, 0u);
  EXPECT_EQ(es.joins_rejected, 1u);
  EXPECT_EQ(es.replans, 0u);
  EXPECT_EQ(es.fleet.jobs_completed, 1u);
}

TEST_F(ElasticFixture, AutoscalerCooldownDampsFlapping) {
  // Two joins 1s apart: the first is accepted under backlog pressure, the
  // second lands inside the 30s cooldown and must be rejected.
  const MembershipTimeline t =
      parse_membership_spec("join:1xV100@1,join:1xV100@2").timeline;
  ElasticOptions o = options(&t, MigrationPolicy::kAuto, /*autoscale=*/true);
  o.autoscale.join_backlog = 1;
  o.autoscale.pressure_backlog = 1;
  o.autoscale.cooldown_s = 30.0;
  const ElasticStats es = engine().serve(one_job(burst(48)), o);
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_EQ(es.joins_offered, 2u);
  EXPECT_EQ(es.joins_accepted, 1u);
  EXPECT_EQ(es.joins_rejected, 1u);
  bool cooldown_logged = false;
  for (const auto& e : es.events) {
    if (e.find("cooldown") != std::string::npos) cooldown_logged = true;
  }
  EXPECT_TRUE(cooldown_logged);
}

TEST_F(ElasticFixture, PriceEventTriggersScaleDownOfJoinedCapacity) {
  // The synthetic replanner caps useful stages at two devices, so joined
  // capacity adds cost but no predicted throughput: once the cooldown
  // allows it, a price event makes releasing the join strictly better in
  // tokens/$.
  const MembershipTimeline t =
      parse_membership_spec("join:1xV100@1,price:V100=2.5@3").timeline;
  ElasticOptions o = options(&t, MigrationPolicy::kAuto, /*autoscale=*/true);
  o.autoscale.join_backlog = 1;
  o.autoscale.pressure_backlog = 1;  // Join accepted on pressure.
  o.autoscale.cooldown_s = 0.0;      // No damping: scale-down allowed.
  o.autoscale.price_margin = 0.01;
  const ElasticStats es = engine().serve(one_job(burst(48)), o);
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_EQ(es.joins_accepted, 1u);
  EXPECT_EQ(es.price_events, 1u);
  EXPECT_EQ(es.scale_downs, 1u);
  EXPECT_EQ(es.replans, 2u);  // join + release
  EXPECT_EQ(es.fleet.jobs_completed, 1u);
}

TEST_F(ElasticFixture, PermanentFaultRestartsInFlightEvenUnderMigrate) {
  // A device FAILURE loses its KV: even with the migrate policy the
  // in-flight work restarts, unlike the graceful leave above.
  sq::sim::FaultSchedule faults;
  // 4s: past the chunked-prefill window of the burst, so some requests
  // hold decode-phase KV when the device dies (a 2s fault would land in
  // prefill, where a restart is a no-op and correctly not counted).
  faults.events.push_back({sq::sim::FaultKind::kDeviceFail, 1, 4e6});
  const MembershipTimeline t = parse_membership_spec("price:T4=0.3@90").timeline;
  ElasticOptions o = options(&t, MigrationPolicy::kMigrate);
  o.fleet.faults = &faults;
  const ElasticStats es = engine().serve(one_job(burst(48)), o);
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_EQ(es.migrations, 0u);
  EXPECT_GT(es.restarts, 0u);
  const auto& rs = es.fleet.jobs[0].continuous;
  EXPECT_GE(rs.faults_hit, 1u);
  EXPECT_EQ(rs.repairs_succeeded, 1u);
  EXPECT_EQ(rs.completed, 48u) << "repair should keep the job serving";
  EXPECT_EQ(es.fleet.jobs_completed, 1u);
}

TEST_F(ElasticFixture, CostLedgerChargesHeldDevices) {
  const MembershipTimeline t =
      parse_membership_spec("join:2xV100@2,leave:node1@6").timeline;
  const ElasticStats es = engine().serve(one_job(burst(48)), options(&t));
  ASSERT_TRUE(es.feasible) << es.failure;
  EXPECT_GT(es.device_seconds, 0.0);
  EXPECT_GT(es.dollars, 0.0);
  EXPECT_DOUBLE_EQ(es.tokens_per_dollar, es.fleet.output_tokens / es.dollars);
  // Held 2 devices at minimum over the makespan, more while joined.
  EXPECT_GE(es.device_seconds, 2.0 * es.fleet.makespan_s - 1e-9);
}

TEST_F(ElasticFixture, ElasticStatsAreBitIdenticalAcrossThreadCounts) {
  const MembershipTimeline t =
      parse_membership_spec("join:2xV100@1.5,leave:1@4,price:V100=1.5@5")
          .timeline;
  ElasticOptions base = options(&t, MigrationPolicy::kAuto);
  base.fleet.num_threads = 1;
  const ElasticStats ref = engine().serve(one_job(burst(48)), base);
  ASSERT_TRUE(ref.feasible) << ref.failure;
  for (const int threads : {2, 4, 8}) {
    ElasticOptions o = base;
    o.fleet.num_threads = threads;
    const ElasticStats es = engine().serve(one_job(burst(48)), o);
    ASSERT_TRUE(es.feasible) << threads;
    EXPECT_EQ(es.fleet.output_tokens, ref.fleet.output_tokens) << threads;
    EXPECT_EQ(es.fleet.makespan_s, ref.fleet.makespan_s) << threads;
    EXPECT_EQ(es.fleet.aggregate_tok_s, ref.fleet.aggregate_tok_s) << threads;
    EXPECT_EQ(es.migrated_kv_bytes, ref.migrated_kv_bytes) << threads;
    EXPECT_EQ(es.migration_s, ref.migration_s) << threads;
    EXPECT_EQ(es.dollars, ref.dollars) << threads;
    EXPECT_EQ(es.events, ref.events) << threads;
    EXPECT_EQ(es.fleet.events, ref.fleet.events) << threads;
    const auto& a = es.fleet.jobs[0].continuous;
    const auto& b = ref.fleet.jobs[0].continuous;
    EXPECT_EQ(a.events, b.events) << threads;
    EXPECT_EQ(a.goodput_tok_s, b.goodput_tok_s) << threads;
    EXPECT_EQ(a.mean_latency_s, b.mean_latency_s) << threads;
  }
}

}  // namespace
}  // namespace sq::elastic
