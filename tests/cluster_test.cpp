// Tests for cluster topology and the Table III paper clusters.
#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "hw/paper_clusters.h"

namespace sq::hw {
namespace {

TEST(Cluster, FlatIndexingAcrossNodes) {
  Node a{"a", GpuType::kT4, 2, 32.0, "", 0};
  Node b{"b", GpuType::kV100, 1, 300.0, "", 0};
  const Cluster c("test", {a, b}, 800.0);
  ASSERT_EQ(c.device_count(), 3);
  EXPECT_EQ(c.device(0).node, 0);
  EXPECT_EQ(c.device(1).node, 0);
  EXPECT_EQ(c.device(2).node, 1);
  EXPECT_EQ(c.spec(0).type, GpuType::kT4);
  EXPECT_EQ(c.spec(2).type, GpuType::kV100);
}

TEST(Cluster, LinkBandwidthIntraVsInter) {
  Node a{"a", GpuType::kT4, 2, 32.0, "", 0};
  Node b{"b", GpuType::kV100, 2, 300.0, "", 0};
  const Cluster c("test", {a, b}, 800.0);
  EXPECT_TRUE(c.same_node(0, 1));
  EXPECT_FALSE(c.same_node(1, 2));
  EXPECT_DOUBLE_EQ(c.link_gbps(0, 1), 32.0);   // intra T4 node
  EXPECT_DOUBLE_EQ(c.link_gbps(2, 3), 300.0);  // intra V100 node
  EXPECT_DOUBLE_EQ(c.link_gbps(1, 2), 100.0);  // 800 Gbit -> 100 GB/s
}

TEST(Cluster, TotalUsableMemorySums) {
  const Cluster c = homogeneous_cluster("h", GpuType::kV100, 4);
  EXPECT_EQ(c.total_usable_memory(),
            4 * gpu_spec(GpuType::kV100).usable_memory_bytes());
}

TEST(Cluster, SummaryFormat) {
  const Cluster c = paper_cluster(5);
  EXPECT_EQ(c.summary(), "3xT4-16G + 1xV100-32G, 800Gbps");
}

TEST(PaperClusters, TableIIIDeviceCounts) {
  // Cluster id -> expected device count per Table III.
  const int expected[] = {0, 1, 3, 2, 4, 4, 4, 6, 4, 4, 4};
  for (int id = 1; id <= kPaperClusterCount; ++id) {
    EXPECT_EQ(paper_cluster(id).device_count(), expected[id]) << "cluster " << id;
  }
}

TEST(PaperClusters, EthernetSpeedsMatchPaper) {
  // Clusters 6 and 8 are on 100 Gbps fabrics, others 800 Gbps.
  EXPECT_DOUBLE_EQ(paper_cluster(6).ethernet_gBps(), 100.0 / 8.0);
  EXPECT_DOUBLE_EQ(paper_cluster(8).ethernet_gBps(), 100.0 / 8.0);
  EXPECT_DOUBLE_EQ(paper_cluster(2).ethernet_gBps(), 100.0);
}

TEST(PaperClusters, GpuTypesMatchTableIII) {
  const Cluster c7 = paper_cluster(7);  // 4xT4 + 2xV100
  int t4 = 0, v100 = 0;
  for (int d = 0; d < c7.device_count(); ++d) {
    if (c7.spec(d).type == GpuType::kT4) ++t4;
    if (c7.spec(d).type == GpuType::kV100) ++v100;
  }
  EXPECT_EQ(t4, 4);
  EXPECT_EQ(v100, 2);

  const Cluster c6 = paper_cluster(6);  // 3xP100 + 1xV100
  EXPECT_EQ(c6.spec(0).type, GpuType::kP100);
  EXPECT_EQ(c6.spec(3).type, GpuType::kV100);
}

TEST(PaperClusters, SameTypeSharesNode) {
  const Cluster c = paper_cluster(7);
  EXPECT_TRUE(c.same_node(0, 3));   // T4s together
  EXPECT_TRUE(c.same_node(4, 5));   // V100s together
  EXPECT_FALSE(c.same_node(3, 4));  // across nodes
}

TEST(PaperClusters, InvalidIdThrows) {
  EXPECT_THROW(paper_cluster(0), std::out_of_range);
  EXPECT_THROW(paper_cluster(11), std::out_of_range);
}

TEST(PaperClusters, HomogeneousClustersAreSingleNode) {
  for (const int id : {1, 8, 9, 10}) {
    EXPECT_EQ(paper_cluster(id).nodes().size(), 1u) << "cluster " << id;
  }
}

TEST(DegradeCluster, PartialExclusionStaysFeasible) {
  const Cluster c = paper_cluster(7);  // 4xT4 + 2xV100
  const DegradedCluster d = degrade_cluster(c, {0, 4});
  EXPECT_TRUE(d.feasible);
  EXPECT_TRUE(d.failure.empty());
  EXPECT_EQ(d.cluster.device_count(), c.device_count() - 2);
  EXPECT_EQ(d.from_original[0], -1);
  EXPECT_EQ(d.from_original[4], -1);
  EXPECT_EQ(d.to_original[0], 1);  // ordering preserved
}

TEST(DegradeCluster, EmptyingTheClusterIsATypedInfeasibleError) {
  const Cluster c = homogeneous_cluster("h", GpuType::kT4, 2);
  const DegradedCluster d = degrade_cluster(c, {0, 1});
  EXPECT_FALSE(d.feasible);
  EXPECT_NE(d.failure.find("excludes every device"), std::string::npos)
      << d.failure;
  EXPECT_EQ(d.cluster.device_count(), 0);
  // One-line diagnostic, suitable for event logs.
  EXPECT_EQ(d.failure.find('\n'), std::string::npos);
}

TEST(GrowCluster, AppendsNodePreservingIndicesAndBandwidth) {
  const Cluster c = paper_cluster(7);
  Node joined;
  joined.name = "joined-0";
  joined.gpu_type = GpuType::kT4;
  joined.gpu_count = 2;
  joined.intra_gbps = 300.0;
  const Cluster g = grow_cluster(c, joined);
  ASSERT_EQ(g.device_count(), c.device_count() + 2);
  // Existing flat indices (and their specs) are untouched.
  for (int d = 0; d < c.device_count(); ++d) {
    EXPECT_EQ(g.spec(d).type, c.spec(d).type) << d;
  }
  EXPECT_EQ(g.spec(c.device_count()).type, GpuType::kT4);
  EXPECT_EQ(g.spec(c.device_count() + 1).type, GpuType::kT4);
  // Ethernet bandwidth survives the rebuild exactly (Gbps vs GB/s units).
  EXPECT_DOUBLE_EQ(g.ethernet_gBps(), c.ethernet_gBps());
  // New devices sit on their own node.
  EXPECT_TRUE(g.same_node(c.device_count(), c.device_count() + 1));
  EXPECT_FALSE(g.same_node(0, c.device_count()));
}

}  // namespace
}  // namespace sq::hw
