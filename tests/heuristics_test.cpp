// Tests for the heuristic planners: greedy, adabits, bitwidth transfer.
#include <gtest/gtest.h>

#include "core_test_util.h"

namespace sq::core {
namespace {

using testutil::Harness;

sq::sim::BatchWorkload batch() { return {8, 512, 32, 2048}; }

TEST(BalancedPartition, HeterogeneousSpeedsSkewCounts) {
  // Cluster 5 (3x T4 + 1x V100) at FP16: the V100 is 2-3x faster than a
  // T4, so its stage should receive more layer groups.  (At INT8 the
  // skew flips — T4 tensor cores beat V100's dp4a — which is exactly the
  // precision-dependence the planner exploits.)
  const Harness h(sq::model::ModelId::kOpt13B, 5, batch());
  const PlanContext ctx = h.context(2, 8, 2);
  const auto stage = balanced_partition(ctx, 0);  // fp16
  ASSERT_FALSE(stage.empty());
  std::vector<int> counts(4, 0);
  for (const int s : stage) ++counts[static_cast<std::size_t>(s)];
  EXPECT_GT(counts[3], counts[0]);  // V100 is stage 3 in natural order
}

TEST(BalancedPartition, PrefillOnlyMetricDiffers) {
  // T4-vs-V100 speed ratios differ between prefill (~2x, compute) and
  // decode (~3x, bandwidth), so phase-aware balancing shifts the cuts.
  const Harness h(sq::model::ModelId::kOpt13B, 5, batch());
  const PlanContext ctx = h.context(2, 8, 1);
  const auto combined = balanced_partition(ctx, 0, PartitionMetric::kCombined);
  const auto prefill = balanced_partition(ctx, 0, PartitionMetric::kPrefillOnly);
  ASSERT_FALSE(combined.empty());
  ASSERT_FALSE(prefill.empty());
  EXPECT_NE(combined, prefill);
}

TEST(BalancedPartition, InfeasibleWhenNothingFits) {
  // OPT-66B at FP16 on cluster 8 (4x T4 = 64 GB) cannot fit: per-group
  // capacity check must fail.
  const Harness h(sq::model::ModelId::kOpt66B, 8, batch());
  const PlanContext ctx = h.context(2, 8, 4);
  EXPECT_TRUE(balanced_partition(ctx, 0).empty());  // fp16
}

TEST(EvenPartition, CoversAllStagesInOrder) {
  const Harness h(sq::model::ModelId::kOpt13B, 9, batch());
  const PlanContext ctx = h.context(4, 8, 4);
  const auto stage = even_partition(ctx);
  ASSERT_EQ(stage.size(), static_cast<std::size_t>(ctx.num_groups()));
  EXPECT_EQ(stage.front(), 0);
  EXPECT_EQ(stage.back(), ctx.num_stages() - 1);
  for (std::size_t g = 1; g < stage.size(); ++g) EXPECT_GE(stage[g], stage[g - 1]);
}

TEST(GreedyPlan, ProducesFeasiblePlan) {
  const Harness h(sq::model::ModelId::kOpt30B, 5, batch());
  const PlanContext ctx = h.context(2, 8, 4);
  const auto g = greedy_plan(ctx);
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->eval.feasible);
  EXPECT_GT(g->eval.objective, 0.0);
}

TEST(GreedyPlan, NulloptWhenModelCannotFit) {
  // Llama-70B on a single V100 is hopeless even at INT3.
  const Harness h(sq::model::ModelId::kLlama33_70B, 1, batch());
  const PlanContext ctx = h.context(2, 8, 8);
  EXPECT_FALSE(greedy_plan(ctx).has_value());
}

TEST(AdabitsPlan, MinimizesOmegaWithinMemory) {
  const Harness h(sq::model::ModelId::kOpt30B, 5, batch());
  const PlanContext ctx = h.context(2, 8, 4);
  const auto a = adabits_plan(ctx);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->eval.feasible);
  // adabits fixes the even partition.
  EXPECT_EQ(a->group_stage, even_partition(ctx));
  // Quality must be at least as good as all-narrowest (it only upgrades).
  std::vector<int> narrow_bits(static_cast<std::size_t>(ctx.num_groups()), 3);  // int3
  const auto narrow = ctx.evaluate(a->group_stage, narrow_bits);
  if (narrow.feasible) {
    EXPECT_LE(a->eval.omega, narrow.omega + 1e-12);
  }
}

TEST(AdabitsPlan, SpendsSpareMemoryOnWiderBits) {
  // On a roomy homogeneous cluster adabits should not leave everything at
  // the narrowest precision.
  const Harness h(sq::model::ModelId::kOpt13B, 9, batch());
  const PlanContext ctx = h.context(4, 8, 4);
  const auto a = adabits_plan(ctx);
  ASSERT_TRUE(a.has_value());
  int narrowest = 0;
  for (const int bi : a->group_bit) {
    narrowest += sq::hw::bits(h.inputs.bits[static_cast<std::size_t>(bi)]) == 3;
  }
  EXPECT_EQ(narrowest, 0);
}

TEST(BitwidthTransfer, NeverWorsensObjective) {
  const Harness h(sq::model::ModelId::kOpt30B, 5, batch());
  const PlanContext ctx = h.context(2, 8, 4);
  const auto a = adabits_plan(ctx);
  ASSERT_TRUE(a.has_value());
  const HeuristicPlan improved = bitwidth_transfer(ctx, *a);
  EXPECT_TRUE(improved.eval.feasible);
  EXPECT_LE(improved.eval.objective, a->eval.objective + 1e-9);
}

TEST(BitwidthTransfer, ImprovesUnbalancedStart) {
  // Start from the even partition at uniform widest-feasible bits on a
  // heterogeneous cluster: the local search must strictly improve it.
  const Harness h(sq::model::ModelId::kOpt30B, 6, batch());
  const PlanContext ctx = h.context(2, 8, 4);
  const auto a = adabits_plan(ctx);
  ASSERT_TRUE(a.has_value());
  const HeuristicPlan improved = bitwidth_transfer(ctx, *a);
  EXPECT_LT(improved.eval.objective, a->eval.objective * 0.98);
}

TEST(BitwidthTransfer, PreservesStructuralInvariants) {
  const Harness h(sq::model::ModelId::kOpt30B, 7, batch());
  const PlanContext ctx = h.context(2, 8, 4);
  const auto g = greedy_plan(ctx);
  ASSERT_TRUE(g.has_value());
  const HeuristicPlan r = bitwidth_transfer(ctx, *g);
  EXPECT_EQ(r.group_stage.front(), 0);
  for (std::size_t i = 1; i < r.group_stage.size(); ++i) {
    EXPECT_GE(r.group_stage[i], r.group_stage[i - 1]);
  }
  const auto ev = ctx.evaluate(r.group_stage, r.group_bit);
  EXPECT_TRUE(ev.feasible);
  EXPECT_NEAR(ev.objective, r.eval.objective, 1e-9);
}

}  // namespace
}  // namespace sq::core
