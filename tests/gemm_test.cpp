// Determinism contract of the blocked GEMM kernel layer (gemm.h): the
// blocked, packed, threaded kernels must produce bytes identical to the
// naive references at every shape (including degenerate ones), every
// blocking parameter, and every thread count — mirroring the guarantee
// planner_parallel_test.cpp asserts for the plan search.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "quant/gptq.h"
#include "quant/qtensor.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sq::tensor {
namespace {

Tensor random_tensor(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(rows, cols);
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

bool same_bytes(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

/// Shapes chosen to hit every edge in the blocked driver: unit dims, exact
/// multiples of the micro-tile and cache blocks, non-multiples, tall/wide.
struct Shape {
  std::size_t m, k, n;
};

const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},     {1, 1, 9},    {5, 1, 3},   {3, 4, 5},
    {8, 8, 8},    {4, 8, 64},    {17, 31, 29}, {64, 64, 64}, {1, 300, 1},
    {128, 256, 64}, {130, 257, 67}, {33, 700, 41}, {256, 13, 512},
};

class GemmThreadGuard {
 public:
  GemmThreadGuard() = default;
  ~GemmThreadGuard() { set_kernel_threads(1); }
};

TEST(GemmBlocked, MatchesNaiveBitForBitAcrossShapes) {
  GemmThreadGuard guard;
  set_kernel_threads(1);
  std::uint64_t seed = 1;
  for (const Shape& s : kShapes) {
    const Tensor a = random_tensor(s.m, s.k, seed++);
    const Tensor b = random_tensor(s.k, s.n, seed++);
    const Tensor ref = matmul_naive(a, b);
    EXPECT_TRUE(same_bytes(matmul_blocked(a, b), ref))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
    EXPECT_TRUE(same_bytes(matmul_small(a, b), ref))
        << "small m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(GemmBlocked, MatchesNaiveAtOddBlockingParameters) {
  GemmThreadGuard guard;
  set_kernel_threads(1);
  const Tensor a = random_tensor(45, 123, 7);
  const Tensor b = random_tensor(123, 77, 8);
  const Tensor ref = matmul_naive(a, b);
  for (const GemmBlocking blk :
       {GemmBlocking{1, 1, 1}, GemmBlocking{3, 5, 7}, GemmBlocking{16, 8, 8},
        GemmBlocking{1000, 1000, 1000}}) {
    EXPECT_TRUE(same_bytes(matmul_blocked(a, b, blk), ref))
        << "mc=" << blk.mc << " kc=" << blk.kc << " nc=" << blk.nc;
  }
}

TEST(GemmBlocked, EmptyShapes) {
  GemmThreadGuard guard;
  for (const Shape& s : {Shape{0, 4, 4}, Shape{4, 0, 4}, Shape{4, 4, 0},
                         Shape{0, 0, 0}}) {
    const Tensor a = random_tensor(s.m, s.k, 11);
    const Tensor b = random_tensor(s.k, s.n, 12);
    const Tensor c = matmul_blocked(a, b);
    EXPECT_TRUE(same_bytes(c, matmul_naive(a, b)));
    EXPECT_EQ(c.rows(), s.m);
    EXPECT_EQ(c.cols(), s.n);
  }
}

TEST(GemmBlocked, BtMatchesNaiveBitForBit) {
  GemmThreadGuard guard;
  set_kernel_threads(1);
  std::uint64_t seed = 100;
  for (const Shape& s : kShapes) {
    const Tensor a = random_tensor(s.m, s.k, seed++);
    const Tensor b = random_tensor(s.n, s.k, seed++);  // B is [n x k]
    EXPECT_TRUE(same_bytes(matmul_bt_blocked(a, b), matmul_bt_naive(a, b)))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(GemmBlocked, TransposeExact) {
  GemmThreadGuard guard;
  const Tensor a = random_tensor(131, 77, 21);
  const Tensor t = transpose_blocked(a);
  ASSERT_EQ(t.rows(), a.cols());
  ASSERT_EQ(t.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(t.at(j, i), a.at(i, j));
    }
  }
}

// The planner-style invariance test: 1/2/4/8 threads, byte-identical.
TEST(GemmBlocked, ThreadCountInvariance) {
  GemmThreadGuard guard;
  const Tensor a = random_tensor(130, 257, 31);
  const Tensor b = random_tensor(257, 191, 32);
  const Tensor bt = random_tensor(191, 257, 33);
  set_kernel_threads(1);
  const Tensor ref = matmul_blocked(a, b);
  const Tensor ref_bt = matmul_bt_blocked(a, bt);
  for (int threads : {2, 4, 8}) {
    set_kernel_threads(threads);
    EXPECT_TRUE(same_bytes(matmul_blocked(a, b), ref)) << threads << " threads";
    EXPECT_TRUE(same_bytes(matmul_bt_blocked(a, bt), ref_bt))
        << threads << " threads";
  }
}

// 0 * NaN must stay NaN: the old zero-skip in matmul dropped NaN/Inf
// propagation from B whenever the matching A element was exactly zero.
TEST(GemmBlocked, NanAndInfPropagateThroughZeroA) {
  GemmThreadGuard guard;
  Tensor a(1, 2);
  a.at(0, 0) = 0.0f;
  a.at(0, 1) = 1.0f;
  Tensor b(2, 2);
  b.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  b.at(0, 1) = std::numeric_limits<float>::infinity();
  b.at(1, 0) = 2.0f;
  b.at(1, 1) = 3.0f;
  for (const Tensor& c : {matmul_naive(a, b), matmul_blocked(a, b)}) {
    EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0*NaN + 1*2
    EXPECT_TRUE(std::isnan(c.at(0, 1)));  // 0*Inf + 1*3 = NaN + 3
  }
}

TEST(GemmBlocked, GramMatchesLegacyGptqLoopBitForBit) {
  GemmThreadGuard guard;
  const std::size_t samples = 37, d = 29;
  const Tensor x = random_tensor(samples, d, 41);

  // The loop gptq_quantize ran before gram_xtx existed, verbatim.
  std::vector<double> ref(d * d, 0.0);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto row = x.row(s);
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = row[i];
      for (std::size_t j = 0; j <= i; ++j) {
        ref[i * d + j] += 2.0 * xi * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) ref[i * d + j] = ref[j * d + i];
  }

  for (int threads : {1, 2, 4, 8}) {
    set_kernel_threads(threads);
    std::vector<double> got(d * d, 0.0);
    gram_xtx(x, 2.0, got);
    EXPECT_EQ(std::memcmp(got.data(), ref.data(), ref.size() * sizeof(double)),
              0)
        << threads << " threads";
  }
}

TEST(GemmBlocked, FusedDequantMatmulMatchesMaterialized) {
  GemmThreadGuard guard;
  using sq::quant::Bitwidth;
  using sq::quant::QTensor;
  using sq::quant::Rounding;
  using sq::quant::Scheme;
  const Tensor w = random_tensor(96, 160, 51);
  const Tensor x = random_tensor(64, 96, 52);  // inside the fused win region
  for (const Bitwidth b : {Bitwidth::kInt4, Bitwidth::kInt8, Bitwidth::kFp16}) {
    const QTensor qw(w, b, Scheme::kSymmetric, Rounding::kDeterministic, 48);
    const Tensor ref = matmul_blocked(x, qw.dequantize());
    for (int threads : {1, 4}) {
      set_kernel_threads(threads);
      EXPECT_TRUE(same_bytes(qw.matmul(x), ref))
          << "bits=" << static_cast<int>(b) << " threads=" << threads;
    }
    // Small activations take the materialize-then-multiply fallback; it
    // must produce the same bytes.
    const Tensor x_small = random_tensor(8, 96, 53);
    EXPECT_TRUE(same_bytes(qw.matmul(x_small),
                           matmul_naive(x_small, qw.dequantize())));
  }
}

TEST(GemmBlocked, GptqQuantizedWeightsThreadInvariant) {
  GemmThreadGuard guard;
  using sq::quant::GptqOptions;
  const Tensor w = random_tensor(24, 32, 61);
  const Tensor calib = random_tensor(48, 24, 62);
  GptqOptions opts;
  set_kernel_threads(1);
  const auto ref = sq::quant::gptq_quantize(w, calib, opts);
  for (int threads : {2, 8}) {
    set_kernel_threads(threads);
    const auto got = sq::quant::gptq_quantize(w, calib, opts);
    EXPECT_TRUE(same_bytes(got.dequantized, ref.dequantized)) << threads;
  }
}

// Kernel invocations must surface in --metrics output when the registry is
// on, and recording must never change results (obs contract).
TEST(GemmKernelInfo, MetricsCountInvocationsWithoutChangingResults) {
  GemmThreadGuard guard;
  set_kernel_threads(1);
  const Tensor a = random_tensor(64, 64, 71);
  const Tensor b = random_tensor(64, 64, 72);
  const Tensor ref = matmul_blocked(a, b);
  sq::obs::set_enabled(true);
  const std::uint64_t calls0 = sq::obs::counter("tensor.gemm.calls").value();
  const std::uint64_t flops0 = sq::obs::counter("tensor.gemm.flops").value();
  const Tensor c = matmul_blocked(a, b);
  sq::obs::set_enabled(false);
  EXPECT_TRUE(same_bytes(c, ref));
  EXPECT_EQ(sq::obs::counter("tensor.gemm.calls").value(), calls0 + 1);
  EXPECT_EQ(sq::obs::counter("tensor.gemm.flops").value(),
            flops0 + 2ull * 64 * 64 * 64);
  EXPECT_GE(sq::obs::counter("tensor.gemm.matmul.calls").value(), 1u);
}

TEST(GemmKernelInfo, ReportsIsaAndThreads) {
  GemmThreadGuard guard;
  EXPECT_NE(kernel_isa(), nullptr);
  set_kernel_threads(3);
  EXPECT_EQ(kernel_threads(), 3);
  set_kernel_threads(1);
  EXPECT_EQ(kernel_threads(), 1);
}

}  // namespace
}  // namespace sq::tensor
