// Property tests for the elastic subsystem:
//
//   1. parse ∘ to_spec = id over seeded random membership timelines, with
//      EXACT field equality (times and prices are doubles — the grammar
//      and generators are built so no ulp is lost in the round trip).
//   2. With an EMPTY timeline the ElasticFleetEngine is byte-identical to
//      FleetEngine: every FleetStats field, every per-request outcome,
//      every event string.
//   3. With a NON-EMPTY timeline the whole ElasticStats are bit-identical
//      across 1, 2, 4 and 8 scheduler threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "elastic/elastic_engine.h"
#include "elastic/membership.h"
#include "hw/cluster.h"
#include "model/registry.h"
#include "runtime/fleet.h"
#include "sim/faults.h"
#include "workload/arrivals.h"

namespace sq::elastic {
namespace {

using sq::hw::Bitwidth;
using sq::runtime::FleetJob;
using sq::runtime::ReplicaGroup;
using sq::runtime::RequestStats;
using sq::workload::TimedRequest;

// ---------------------------------------------------------- round trip

TEST(ElasticProperty, MembershipRoundTripIsIdentity) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const double horizon = 30.0 + static_cast<double>(seed % 7) * 60.0;
    const MembershipTimeline t =
        random_membership(seed, horizon, 1 + static_cast<int>(seed % 8));
    const MembershipParse p = parse_membership_spec(t.to_spec());
    ASSERT_TRUE(p.ok) << "seed " << seed << ": " << p.error;
    ASSERT_EQ(p.timeline.events.size(), t.events.size()) << "seed " << seed;
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      const MembershipEvent& a = t.events[i];
      const MembershipEvent& b = p.timeline.events[i];
      EXPECT_EQ(a.kind, b.kind) << "seed " << seed << " event " << i;
      EXPECT_EQ(a.at_us, b.at_us) << "seed " << seed << " event " << i;
      EXPECT_EQ(a.count, b.count) << "seed " << seed << " event " << i;
      EXPECT_EQ(a.gpu, b.gpu) << "seed " << seed << " event " << i;
      EXPECT_EQ(a.whole_node, b.whole_node) << "seed " << seed << " event " << i;
      EXPECT_EQ(a.index, b.index) << "seed " << seed << " event " << i;
      EXPECT_EQ(a.price, b.price) << "seed " << seed << " event " << i;
    }
    // And the render itself is a fixed point.
    EXPECT_EQ(p.timeline.to_spec(), t.to_spec()) << "seed " << seed;
  }
}

// ------------------------------------------------------- shared fixtures

sq::hw::Cluster base_cluster() {
  sq::hw::Node n;
  n.name = "node-v100-0";
  n.gpu_type = sq::hw::GpuType::kV100;
  n.gpu_count = 2;
  n.intra_gbps = 300.0;
  return sq::hw::Cluster("elastic-prop", {n}, 800.0);
}

sq::sim::ExecutionPlan plan_over(const sq::model::LlmSpec& m, int stages,
                                 Bitwidth b) {
  sq::sim::ExecutionPlan p;
  const int per = m.n_layers / stages;
  for (int s = 0; s < stages; ++s) {
    p.stages.push_back(
        {{s}, s * per, s + 1 == stages ? m.n_layers : (s + 1) * per});
  }
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), b);
  p.prefill_microbatch = 4;
  p.decode_microbatch = 16;
  return p;
}

ElasticReplanner synthetic_replanner(const sq::model::LlmSpec& m) {
  return [&m](const sq::hw::Cluster& c, int) {
    ElasticReplanOutcome o;
    if (c.device_count() < 1) {
      o.failure = "no devices";
      return o;
    }
    const int stages = std::min(2, c.device_count());
    o.plan = plan_over(m, stages, Bitwidth::kInt8);
    o.predicted_tok_s = 100.0 * stages;
    o.feasible = true;
    return o;
  };
}

std::vector<FleetJob> jobs_of(int n_requests) {
  std::vector<TimedRequest> arr;
  for (int i = 0; i < n_requests; ++i) {
    TimedRequest tr;
    tr.arrive_s = 0.05 * i;
    tr.request.prompt_tokens = 256 + 64 * (i % 5);
    tr.request.output_tokens = 48 + 16 * (i % 3);
    arr.push_back(tr);
  }
  FleetJob job;
  job.name = "prop-job";
  job.arrivals = std::move(arr);
  return {std::move(job)};
}

void expect_requests_eq(const RequestStats& a, const RequestStats& b,
                        const std::string& tag) {
  EXPECT_EQ(a.feasible, b.feasible) << tag;
  EXPECT_EQ(a.failure, b.failure) << tag;
  EXPECT_EQ(a.submitted, b.submitted) << tag;
  EXPECT_EQ(a.completed, b.completed) << tag;
  EXPECT_EQ(a.lost, b.lost) << tag;
  EXPECT_EQ(a.preemptions, b.preemptions) << tag;
  EXPECT_EQ(a.admission_blocked, b.admission_blocked) << tag;
  EXPECT_EQ(a.iterations, b.iterations) << tag;
  EXPECT_EQ(a.output_tokens, b.output_tokens) << tag;
  EXPECT_EQ(a.total_seconds, b.total_seconds) << tag;
  EXPECT_EQ(a.goodput_tok_s, b.goodput_tok_s) << tag;
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s) << tag;
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s) << tag;
  EXPECT_EQ(a.p95_latency_s, b.p95_latency_s) << tag;
  EXPECT_EQ(a.mean_queue_s, b.mean_queue_s) << tag;
  EXPECT_EQ(a.kv_peak_utilization, b.kv_peak_utilization) << tag;
  EXPECT_EQ(a.faults_hit, b.faults_hit) << tag;
  EXPECT_EQ(a.retries, b.retries) << tag;
  EXPECT_EQ(a.fault_permanent, b.fault_permanent) << tag;
  EXPECT_EQ(a.fault_device, b.fault_device) << tag;
  EXPECT_EQ(a.fault_s, b.fault_s) << tag;
  EXPECT_EQ(a.stopped, b.stopped) << tag;
  EXPECT_EQ(a.stop_s, b.stop_s) << tag;
  EXPECT_EQ(a.events, b.events) << tag;
  EXPECT_EQ(a.repairs_attempted, b.repairs_attempted) << tag;
  EXPECT_EQ(a.repairs_succeeded, b.repairs_succeeded) << tag;
  EXPECT_EQ(a.final_generation, b.final_generation) << tag;
  EXPECT_EQ(a.final_plan.layer_bits, b.final_plan.layer_bits) << tag;
  ASSERT_EQ(a.requests.size(), b.requests.size()) << tag;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const auto& x = a.requests[i];
    const auto& y = b.requests[i];
    EXPECT_EQ(x.id, y.id) << tag << " req " << i;
    EXPECT_EQ(x.completed, y.completed) << tag << " req " << i;
    EXPECT_EQ(x.lost, y.lost) << tag << " req " << i;
    EXPECT_EQ(x.arrive_s, y.arrive_s) << tag << " req " << i;
    EXPECT_EQ(x.admit_s, y.admit_s) << tag << " req " << i;
    EXPECT_EQ(x.finish_s, y.finish_s) << tag << " req " << i;
    EXPECT_EQ(x.output_tokens, y.output_tokens) << tag << " req " << i;
    EXPECT_EQ(x.preemptions, y.preemptions) << tag << " req " << i;
    EXPECT_EQ(x.in_flight, y.in_flight) << tag << " req " << i;
    EXPECT_EQ(x.prefill_done, y.prefill_done) << tag << " req " << i;
    EXPECT_EQ(x.progress_tokens, y.progress_tokens) << tag << " req " << i;
  }
}

void expect_fleet_eq(const sq::runtime::FleetStats& a,
                     const sq::runtime::FleetStats& b, const std::string& tag) {
  EXPECT_EQ(a.feasible, b.feasible) << tag;
  EXPECT_EQ(a.failure, b.failure) << tag;
  EXPECT_EQ(a.jobs_completed, b.jobs_completed) << tag;
  EXPECT_EQ(a.jobs_rejected, b.jobs_rejected) << tag;
  EXPECT_EQ(a.jobs_reassigned, b.jobs_reassigned) << tag;
  EXPECT_EQ(a.groups_retired, b.groups_retired) << tag;
  EXPECT_EQ(a.group_busy_s, b.group_busy_s) << tag;
  EXPECT_EQ(a.group_jobs, b.group_jobs) << tag;
  EXPECT_EQ(a.output_tokens, b.output_tokens) << tag;
  EXPECT_EQ(a.makespan_s, b.makespan_s) << tag;
  EXPECT_EQ(a.aggregate_tok_s, b.aggregate_tok_s) << tag;
  EXPECT_EQ(a.faults_hit, b.faults_hit) << tag;
  EXPECT_EQ(a.retries, b.retries) << tag;
  EXPECT_EQ(a.repairs, b.repairs) << tag;
  EXPECT_EQ(a.events, b.events) << tag;
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << tag;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].job, b.jobs[j].job) << tag << " job " << j;
    EXPECT_EQ(a.jobs[j].group, b.jobs[j].group) << tag << " job " << j;
    EXPECT_EQ(a.jobs[j].completed, b.jobs[j].completed) << tag << " job " << j;
    EXPECT_EQ(a.jobs[j].failure, b.jobs[j].failure) << tag << " job " << j;
    EXPECT_EQ(a.jobs[j].start_s, b.jobs[j].start_s) << tag << " job " << j;
    EXPECT_EQ(a.jobs[j].end_s, b.jobs[j].end_s) << tag << " job " << j;
    expect_requests_eq(a.jobs[j].continuous, b.jobs[j].continuous,
                       tag + " job " + std::to_string(j));
  }
}

// ------------------------------------------- empty-timeline equivalence

TEST(ElasticProperty, EmptyTimelineIsByteIdenticalToFleetEngine) {
  const auto model = sq::model::spec(sq::model::ModelId::kOpt13B);
  ReplicaGroup rg;
  rg.cluster = base_cluster();
  rg.plan = plan_over(model, 2, Bitwidth::kInt8);
  rg.predicted_tok_s = 200.0;

  // Once plain, once with a fault schedule: the forwarding must be exact
  // in both regimes.
  sq::sim::FaultSchedule faults;
  sq::sim::FaultEvent slow;
  slow.kind = sq::sim::FaultKind::kSlowdown;
  slow.device = 0;
  slow.start_us = 1e6;
  slow.duration_us = 2e6;
  slow.factor = 2.0;
  faults.events.push_back(slow);
  for (const bool with_faults : {false, true}) {
    sq::runtime::FleetOptions fopts;
    fopts.num_threads = 2;
    if (with_faults) fopts.faults = &faults;

    const sq::runtime::FleetEngine fleet(model, {rg});
    const sq::runtime::FleetStats want = fleet.serve(jobs_of(24), fopts);

    const ElasticFleetEngine elastic(model, {rg});
    const MembershipParse empty = parse_membership_spec("");
    ASSERT_TRUE(empty.ok);
    for (const MembershipTimeline* timeline :
         {static_cast<const MembershipTimeline*>(nullptr), &empty.timeline}) {
      ElasticOptions eopts;
      eopts.timeline = timeline;
      eopts.replan = synthetic_replanner(model);
      eopts.fleet = fopts;
      const ElasticStats got = elastic.serve(jobs_of(24), eopts);
      expect_fleet_eq(got.fleet, want,
                      with_faults ? "faults" : "plain");
      EXPECT_EQ(got.events_applied, 0u);
      EXPECT_EQ(got.replans, 0u);
      EXPECT_TRUE(got.events.empty());
    }
  }
}

// --------------------------------------------------- thread determinism

void expect_elastic_eq(const ElasticStats& a, const ElasticStats& b,
                       const std::string& tag) {
  EXPECT_EQ(a.feasible, b.feasible) << tag;
  EXPECT_EQ(a.failure, b.failure) << tag;
  EXPECT_EQ(a.events_applied, b.events_applied) << tag;
  EXPECT_EQ(a.joins_offered, b.joins_offered) << tag;
  EXPECT_EQ(a.joins_accepted, b.joins_accepted) << tag;
  EXPECT_EQ(a.joins_rejected, b.joins_rejected) << tag;
  EXPECT_EQ(a.leaves, b.leaves) << tag;
  EXPECT_EQ(a.price_events, b.price_events) << tag;
  EXPECT_EQ(a.scale_downs, b.scale_downs) << tag;
  EXPECT_EQ(a.replans, b.replans) << tag;
  EXPECT_EQ(a.migrations, b.migrations) << tag;
  EXPECT_EQ(a.drains, b.drains) << tag;
  EXPECT_EQ(a.restarts, b.restarts) << tag;
  EXPECT_EQ(a.migrated_kv_bytes, b.migrated_kv_bytes) << tag;
  EXPECT_EQ(a.migration_s, b.migration_s) << tag;
  EXPECT_EQ(a.device_seconds, b.device_seconds) << tag;
  EXPECT_EQ(a.dollars, b.dollars) << tag;
  EXPECT_EQ(a.tokens_per_dollar, b.tokens_per_dollar) << tag;
  EXPECT_EQ(a.events, b.events) << tag;
  expect_fleet_eq(a.fleet, b.fleet, tag);
}

TEST(ElasticProperty, ElasticServingIsThreadBitIdentical) {
  const auto model = sq::model::spec(sq::model::ModelId::kOpt13B);
  ReplicaGroup rg;
  rg.cluster = base_cluster();
  rg.plan = plan_over(model, 2, Bitwidth::kInt8);
  rg.predicted_tok_s = 200.0;
  const ElasticFleetEngine elastic(model, {rg});

  for (const std::uint64_t seed : {3u, 11u}) {
    // Seeded non-empty timelines over the serving window, plus a fixed
    // handcrafted one that is guaranteed to fire mid-serving.
    const MembershipTimeline t =
        seed == 3u
            ? parse_membership_spec("join:2xV100@1.25,leave:1@3,price:V100=1.4@4")
                  .timeline
            : random_membership(seed, 12.0, 5);
    ASSERT_FALSE(t.empty());

    ElasticOptions base;
    base.timeline = &t;
    base.replan = synthetic_replanner(model);
    base.fleet.num_threads = 1;
    const ElasticStats ref = elastic.serve(jobs_of(32), base);

    for (const int threads : {2, 4, 8}) {
      ElasticOptions o = base;
      o.fleet.num_threads = threads;
      const ElasticStats got = elastic.serve(jobs_of(32), o);
      expect_elastic_eq(got, ref,
                        "seed " + std::to_string(seed) + " threads " +
                            std::to_string(threads));
    }
  }
}

}  // namespace
}  // namespace sq::elastic
