// Shared fixture plumbing for the core (assigner) tests: builds the
// latency/quality models once per model+cluster combination.
#pragma once

#include <memory>

#include "core/context.h"
#include "core/planner.h"
#include "core/topology.h"
#include "cost/latency_model.h"
#include "hw/paper_clusters.h"
#include "model/registry.h"
#include "quality/quality_model.h"

namespace sq::core::testutil {

inline const std::vector<sq::hw::Bitwidth>& all_bits() {
  static const std::vector<sq::hw::Bitwidth> bits = {
      sq::hw::Bitwidth::kFp16, sq::hw::Bitwidth::kInt8, sq::hw::Bitwidth::kInt4,
      sq::hw::Bitwidth::kInt3};
  return bits;
}

/// Everything a PlanContext needs, owned together so pointers stay valid.
struct Harness {
  sq::model::LlmSpec model;
  sq::hw::Cluster cluster;
  sq::cost::LatencyCostModel latency;
  sq::quality::QualityModel quality;
  PlanInputs inputs;

  Harness(sq::model::ModelId id, int cluster_id, sq::sim::BatchWorkload w,
          double theta = 1.0)
      : model(sq::model::spec(id)),
        cluster(sq::hw::paper_cluster(cluster_id)),
        latency(model),
        quality(model, all_bits()) {
    Planner::profile_all(latency, cluster, all_bits());
    inputs.model = &model;
    inputs.cluster = &cluster;
    inputs.latency = &latency;
    inputs.workload = w;
    inputs.bits = all_bits();
    inputs.theta = theta;
    const double k = quality.ppl_per_omega();
    inputs.omega_ppl.assign(static_cast<std::size_t>(model.n_layers),
                            std::vector<double>(all_bits().size(), 0.0));
    for (int l = 0; l < model.n_layers; ++l) {
      for (std::size_t bi = 0; bi < all_bits().size(); ++bi) {
        inputs.omega_ppl[static_cast<std::size_t>(l)][bi] =
            k * quality.indicators().at(static_cast<std::size_t>(l), all_bits()[bi]);
      }
    }
  }

  /// A context over the natural topology at the given micro-batch sizes.
  PlanContext context(std::uint64_t eta, std::uint64_t xi, int group_size = 4) const {
    const auto topos = natural_topologies(cluster, false);
    return PlanContext(inputs, topos.front(), eta, xi, group_size);
  }
};

}  // namespace sq::core::testutil
