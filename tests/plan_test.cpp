// Tests for ExecutionPlan validation and BatchWorkload chunking.
#include <gtest/gtest.h>

#include "hw/paper_clusters.h"
#include "model/registry.h"
#include "sim/plan.h"

namespace sq::sim {
namespace {

using sq::hw::Bitwidth;

ExecutionPlan simple_plan(int layers, int split) {
  ExecutionPlan p;
  p.stages.push_back({{0}, 0, split});
  p.stages.push_back({{1}, split, layers});
  p.layer_bits.assign(static_cast<std::size_t>(layers), Bitwidth::kFp16);
  return p;
}

TEST(ExecutionPlan, ValidPlanPasses) {
  const auto m = sq::model::spec(sq::model::ModelId::kQwen25_14B);
  const auto c = sq::hw::paper_cluster(3);
  const auto p = simple_plan(m.n_layers, 20);
  EXPECT_EQ(p.validate(m, c), "");
  EXPECT_EQ(p.covered_layers(), m.n_layers);
}

TEST(ExecutionPlan, DetectsGapsAndOverlaps) {
  const auto m = sq::model::spec(sq::model::ModelId::kQwen25_14B);
  const auto c = sq::hw::paper_cluster(3);
  ExecutionPlan p = simple_plan(m.n_layers, 20);
  p.stages[1].layer_begin = 22;  // gap
  EXPECT_NE(p.validate(m, c), "");
  p.stages[1].layer_begin = 18;  // overlap
  EXPECT_NE(p.validate(m, c), "");
}

TEST(ExecutionPlan, DetectsPartialCoverage) {
  const auto m = sq::model::spec(sq::model::ModelId::kQwen25_14B);
  const auto c = sq::hw::paper_cluster(3);
  ExecutionPlan p = simple_plan(m.n_layers, 20);
  p.stages[1].layer_end = m.n_layers - 1;
  EXPECT_NE(p.validate(m, c), "");
}

TEST(ExecutionPlan, DetectsDeviceReuse) {
  const auto m = sq::model::spec(sq::model::ModelId::kQwen25_14B);
  const auto c = sq::hw::paper_cluster(3);
  ExecutionPlan p = simple_plan(m.n_layers, 20);
  p.stages[1].devices = {0};  // same device twice
  EXPECT_NE(p.validate(m, c), "");
}

TEST(ExecutionPlan, DetectsInvalidDevice) {
  const auto m = sq::model::spec(sq::model::ModelId::kQwen25_14B);
  const auto c = sq::hw::paper_cluster(3);
  ExecutionPlan p = simple_plan(m.n_layers, 20);
  p.stages[1].devices = {7};
  EXPECT_NE(p.validate(m, c), "");
}

TEST(ExecutionPlan, DetectsCrossNodeTpGroup) {
  const auto m = sq::model::spec(sq::model::ModelId::kQwen25_14B);
  const auto c = sq::hw::paper_cluster(3);  // V100 node + A100 node
  ExecutionPlan p;
  p.stages.push_back({{0, 1}, 0, m.n_layers});  // devices on different nodes
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), Bitwidth::kFp16);
  EXPECT_NE(p.validate(m, c), "");
}

TEST(ExecutionPlan, DetectsBadMicrobatch) {
  const auto m = sq::model::spec(sq::model::ModelId::kQwen25_14B);
  const auto c = sq::hw::paper_cluster(3);
  ExecutionPlan p = simple_plan(m.n_layers, 20);
  p.prefill_microbatch = 0;
  EXPECT_NE(p.validate(m, c), "");
}

TEST(ExecutionPlan, SummaryMentionsDevicesAndBits) {
  const auto c = sq::hw::paper_cluster(3);
  ExecutionPlan p = simple_plan(48, 20);
  for (int l = 0; l < 10; ++l) p.layer_bits[static_cast<std::size_t>(l)] = Bitwidth::kInt4;
  const std::string s = p.summary(c);
  EXPECT_NE(s.find("V100"), std::string::npos);
  EXPECT_NE(s.find("A100"), std::string::npos);
  EXPECT_NE(s.find("int4"), std::string::npos);
  EXPECT_NE(s.find("fp16"), std::string::npos);
}

TEST(BatchWorkload, ChunkMath) {
  BatchWorkload w;
  w.prompt_len = 5000;
  w.chunk_tokens = 2048;
  EXPECT_EQ(w.chunks(), 3u);
  EXPECT_EQ(w.chunk_len(), 1667u);  // ceil(5000/3)
  w.prompt_len = 512;
  EXPECT_EQ(w.chunks(), 1u);
  EXPECT_EQ(w.chunk_len(), 512u);
}

TEST(BatchWorkload, ZeroChunkMeansUnchunked) {
  BatchWorkload w;
  w.prompt_len = 9999;
  w.chunk_tokens = 0;
  EXPECT_EQ(w.chunks(), 1u);
}

TEST(BatchWorkload, MaxContext) {
  BatchWorkload w;
  w.prompt_len = 1000;
  w.gen_tokens = 200;
  EXPECT_EQ(w.max_context(), 1200u);
}

}  // namespace
}  // namespace sq::sim
