// Tests for the two-phase simplex LP solver.
#include <gtest/gtest.h>

#include "solver/lp.h"

namespace sq::solver {
namespace {

TEST(Simplex, SimpleBoundedMinimum) {
  // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2  ->  (2, 2), obj -6.
  LpProblem p;
  const int x = p.add_variable(-1.0, "x");
  const int y = p.add_variable(-2.0, "y");
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0, ""});
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 3.0, ""});
  p.add_constraint({{{y, 1.0}}, Sense::kLe, 2.0, ""});
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-9);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0, 1e-9);
}

TEST(Simplex, EqualityConstraintsViaPhase1) {
  // min x + y s.t. x + y = 5, x - y = 1  ->  (3, 2), obj 5.
  LpProblem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kEq, 5.0, ""});
  p.add_constraint({{{x, 1.0}, {y, -1.0}}, Sense::kEq, 1.0, ""});
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-8);
  EXPECT_NEAR(s.x[1], 2.0, 1e-8);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  (4, 0), obj 8.
  LpProblem p;
  const int x = p.add_variable(2.0);
  const int y = p.add_variable(3.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0, ""});
  p.add_constraint({{{x, 1.0}}, Sense::kGe, 1.0, ""});
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem p;
  const int x = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{x, 1.0}}, Sense::kGe, 2.0, ""});
  EXPECT_EQ(SimplexSolver().solve(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpProblem p;
  const int x = p.add_variable(-1.0);  // minimize -x, x free upward
  p.add_constraint({{{x, 1.0}}, Sense::kGe, 0.0, ""});
  EXPECT_EQ(SimplexSolver().solve(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -3 (i.e. x >= 3).
  LpProblem p;
  const int x = p.add_variable(1.0);
  p.add_constraint({{{x, -1.0}}, Sense::kLe, -3.0, ""});
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(Simplex, FixedVariableSubstitution) {
  // min x + y s.t. x + y >= 4 with y fixed at 3  ->  x = 1.
  LpProblem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kGe, 4.0, ""});
  const std::vector<std::uint8_t> mask = {0, 1};
  const std::vector<double> vals = {0.0, 3.0};
  const LpSolution s = SimplexSolver().solve(p, mask, vals);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 1.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(Simplex, FixingCanCauseInfeasibility) {
  LpProblem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(1.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0, ""});
  p.add_constraint({{{x, 1.0}}, Sense::kGe, 1.0, ""});
  const std::vector<std::uint8_t> mask = {0, 1};
  const std::vector<double> vals = {0.0, 5.0};  // y = 5 breaks x + y <= 2
  EXPECT_EQ(SimplexSolver().solve(p, mask, vals).status, LpStatus::kInfeasible);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple constraints active at the optimum.
  LpProblem p;
  const int x = p.add_variable(-1.0);
  const int y = p.add_variable(-1.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{y, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0, ""});
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Sense::kLe, 2.0, ""});  // duplicate
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Simplex, LargerAssignmentLikeLp) {
  // 20 items, 4 slots, assignment equalities + capacity rows — the shape
  // the assigner generates.  LP relaxation objective must equal the known
  // greedy bound (costs are separable).
  LpProblem p;
  std::vector<std::vector<int>> z(20, std::vector<int>(4));
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 4; ++j) {
      z[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          p.add_variable(1.0 + 0.1 * j + 0.01 * i);
    }
  }
  for (int i = 0; i < 20; ++i) {
    Constraint c;
    c.sense = Sense::kEq;
    c.rhs = 1.0;
    for (int j = 0; j < 4; ++j) {
      c.terms.push_back({z[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    }
    p.add_constraint(std::move(c));
  }
  for (int j = 0; j < 4; ++j) {
    Constraint c;
    c.sense = Sense::kLe;
    c.rhs = 5.0;  // exactly 20 / 4
    for (int i = 0; i < 20; ++i) {
      c.terms.push_back({z[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    }
    p.add_constraint(std::move(c));
  }
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Slot costs differ by 0.1 per slot; every slot must take 5 items.
  // Objective = sum_i 1 + 0.01*i  +  5 * (0 + .1 + .2 + .3).
  double expected = 0.0;
  for (int i = 0; i < 20; ++i) expected += 1.0 + 0.01 * i;
  expected += 5.0 * (0.1 + 0.2 + 0.3);
  EXPECT_NEAR(s.objective, expected, 1e-6);
  EXPECT_LE(p.max_violation(s.x), 1e-7);
}

TEST(LpProblem, ViolationMetric) {
  LpProblem p;
  const int x = p.add_variable(0.0);
  p.add_constraint({{{x, 1.0}}, Sense::kLe, 1.0, ""});
  EXPECT_EQ(p.max_violation({0.5}), 0.0);
  EXPECT_NEAR(p.max_violation({2.0}), 1.0, 1e-12);
  EXPECT_NEAR(p.max_violation({-0.25}), 0.25, 1e-12);  // nonnegativity
}

}  // namespace
}  // namespace sq::solver
