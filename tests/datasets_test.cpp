// Tests for the workload generators (Fig. 7 / Sec. II-A distributions).
#include <gtest/gtest.h>

#include "workload/datasets.h"

namespace sq::workload {
namespace {

TEST(Datasets, Deterministic) {
  const auto a = sample(Dataset::kCnnDailyMail, 100, 7);
  const auto b = sample(Dataset::kCnnDailyMail, 100, 7);
  const auto c = sample(Dataset::kCnnDailyMail, 100, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs |= a[i].prompt_tokens != c[i].prompt_tokens;
  }
  EXPECT_TRUE(differs);
}

TEST(Datasets, CnnDailyMailMatchesPaperMeans) {
  // Medium prompts, ~299 output tokens (paper Sec. VI-C).
  const auto reqs = sample(Dataset::kCnnDailyMail, 5000, 1);
  const auto [pin, pout] = mean_lengths(reqs);
  EXPECT_NEAR(pout, 299.0, 25.0);
  EXPECT_GT(pin, 500.0);
  EXPECT_LT(pin, 1400.0);
}

TEST(Datasets, LoogleIsLongContextShortOutput) {
  // Fig. 7: much longer inputs, ~63 output tokens.
  const auto loogle = sample(Dataset::kLoogle, 5000, 2);
  const auto cnn = sample(Dataset::kCnnDailyMail, 5000, 2);
  const auto [lin, lout] = mean_lengths(loogle);
  const auto [cin, cout] = mean_lengths(cnn);
  EXPECT_NEAR(lout, 63.0, 10.0);
  EXPECT_GT(lin, 5.0 * cin);
  EXPECT_LT(lout, 0.5 * cout);
}

TEST(Datasets, ShareGptBucketFractions) {
  // Sec. II-A: <=128 14.20%, 129-512 20.52%, 513-1024 14.24%,
  // 1025-2048 14.53%, rest 36.51%.
  const auto reqs = sample(Dataset::kShareGpt, 20000, 3);
  std::vector<std::uint64_t> prompts;
  for (const auto& r : reqs) prompts.push_back(r.prompt_tokens);
  const LengthBuckets b = bucketize(prompts);
  ASSERT_EQ(b.fractions.size(), 5u);
  EXPECT_NEAR(b.fractions[0], 0.1420, 0.015);
  EXPECT_NEAR(b.fractions[1], 0.2052, 0.015);
  EXPECT_NEAR(b.fractions[2], 0.1424, 0.015);
  EXPECT_NEAR(b.fractions[3], 0.1453, 0.015);
  EXPECT_NEAR(b.fractions[4], 0.3651, 0.015);
}

TEST(Datasets, AllLengthsPositive) {
  for (const Dataset d : {Dataset::kCnnDailyMail, Dataset::kLoogle, Dataset::kShareGpt}) {
    for (const auto& r : sample(d, 500, 4)) {
      EXPECT_GT(r.prompt_tokens, 0u) << to_string(d);
      EXPECT_GT(r.output_tokens, 0u) << to_string(d);
    }
  }
}

TEST(Bucketize, EdgesAreInclusive) {
  const std::vector<std::uint64_t> lens = {128, 129, 512, 513, 1024, 1025, 2048, 2049};
  const LengthBuckets b = bucketize(lens);
  EXPECT_DOUBLE_EQ(b.fractions[0], 1.0 / 8);
  EXPECT_DOUBLE_EQ(b.fractions[1], 2.0 / 8);
  EXPECT_DOUBLE_EQ(b.fractions[2], 2.0 / 8);
  EXPECT_DOUBLE_EQ(b.fractions[3], 2.0 / 8);
  EXPECT_DOUBLE_EQ(b.fractions[4], 1.0 / 8);
}

TEST(Bucketize, EmptyInput) {
  const LengthBuckets b = bucketize({});
  for (const double f : b.fractions) EXPECT_EQ(f, 0.0);
}

TEST(MeanLengths, EmptyIsZero) {
  const auto [p, o] = mean_lengths({});
  EXPECT_EQ(p, 0.0);
  EXPECT_EQ(o, 0.0);
}

}  // namespace
}  // namespace sq::workload
