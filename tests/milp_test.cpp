// Tests for the branch-and-bound MILP solver.
#include <gtest/gtest.h>

#include "solver/milp.h"
#include "tensor/rng.h"

namespace sq::solver {
namespace {

TEST(Milp, BinaryKnapsackViaAssignment) {
  // Three items, two slots, slot 0 capacity 1: classic small MILP with a
  // fractional LP relaxation.
  LpProblem p;
  const double cost[3][2] = {{1.0, 2.5}, {2.0, 1.2}, {1.5, 1.4}};
  int z[3][2];
  std::vector<int> bins;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      z[i][j] = p.add_variable(cost[i][j]);
      bins.push_back(z[i][j]);
    }
  }
  for (int i = 0; i < 3; ++i) {
    p.add_constraint({{{z[i][0], 1.0}, {z[i][1], 1.0}}, Sense::kEq, 1.0, ""});
  }
  p.add_constraint({{{z[0][0], 1.0}, {z[1][0], 1.0}, {z[2][0], 1.0}}, Sense::kLe, 1.0, ""});
  const MilpResult r = BranchAndBound().solve(p, bins);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.6, 1e-9);  // item0->slot0, others slot1
  EXPECT_GT(r.x[static_cast<std::size_t>(z[0][0])], 0.5);
}

TEST(Milp, DetectsInfeasibility) {
  LpProblem p;
  const int a = p.add_variable(1.0);
  const int b = p.add_variable(1.0);
  p.add_constraint({{{a, 1.0}, {b, 1.0}}, Sense::kEq, 1.0, ""});
  p.add_constraint({{{a, 1.0}}, Sense::kGe, 2.0, ""});  // forces a >= 2 > 1
  const MilpResult r = BranchAndBound().solve(p, {a, b});
  EXPECT_EQ(r.status, MilpStatus::kInfeasible);
}

TEST(Milp, WarmStartAccepted) {
  LpProblem p;
  const int a = p.add_variable(1.0);
  const int b = p.add_variable(2.0);
  p.add_constraint({{{a, 1.0}, {b, 1.0}}, Sense::kEq, 1.0, ""});
  const std::vector<double> warm = {0.0, 1.0};  // feasible, obj 2
  const MilpResult r = BranchAndBound().solve(p, {a, b}, warm);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);  // improves past the warm start
}

TEST(Milp, InvalidWarmStartIgnored) {
  LpProblem p;
  const int a = p.add_variable(1.0);
  const int b = p.add_variable(2.0);
  p.add_constraint({{{a, 1.0}, {b, 1.0}}, Sense::kEq, 1.0, ""});
  const std::vector<double> warm = {1.0, 1.0};  // violates the equality
  const MilpResult r = BranchAndBound().solve(p, {a, b}, warm);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(Milp, IntegerRoundingMattersVsLp) {
  // min -x1 - x2 s.t. 2x1 + 2x2 <= 3 with binaries: LP gives 1.5 items,
  // MILP must settle for exactly one.
  LpProblem p;
  const int x1 = p.add_variable(-1.0);
  const int x2 = p.add_variable(-1.0);
  p.add_constraint({{{x1, 2.0}, {x2, 2.0}}, Sense::kLe, 3.0, ""});
  // Bound binaries explicitly since no assignment equality implies <= 1.
  p.add_constraint({{{x1, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{x2, 1.0}}, Sense::kLe, 1.0, ""});
  const MilpResult r = BranchAndBound().solve(p, {x1, x2});
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
}

TEST(Milp, TimeLimitProducesIncumbentAndBound) {
  // Random assignment problem large enough to take a few nodes; a generous
  // cap still proves optimality, a zero-second cap must truncate.
  sq::tensor::Rng rng(3);
  LpProblem p;
  const int n = 12, m = 4;
  std::vector<int> bins;
  std::vector<std::vector<int>> z(n, std::vector<int>(m));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      z[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          p.add_variable(rng.uniform(1.0, 2.0));
      bins.push_back(z[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  for (int i = 0; i < n; ++i) {
    Constraint c;
    c.sense = Sense::kEq;
    c.rhs = 1.0;
    for (int j = 0; j < m; ++j) {
      c.terms.push_back({z[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    }
    p.add_constraint(std::move(c));
  }
  for (int j = 0; j < m; ++j) {
    Constraint c;
    c.sense = Sense::kLe;
    c.rhs = 3.0;
    for (int i = 0; i < n; ++i) {
      c.terms.push_back({z[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
    }
    p.add_constraint(std::move(c));
  }

  MilpOptions gen;
  gen.time_limit_s = 30.0;
  const MilpResult full = BranchAndBound(gen).solve(p, bins);
  ASSERT_EQ(full.status, MilpStatus::kOptimal);
  EXPECT_LE(full.best_bound, full.objective + 1e-6);

  MilpOptions tight;
  tight.time_limit_s = 0.0;
  const MilpResult cut = BranchAndBound(tight).solve(p, bins);
  EXPECT_TRUE(cut.hit_time_limit);
  EXPECT_NE(cut.status, MilpStatus::kOptimal);
}

TEST(Milp, NodeCapRespected) {
  LpProblem p;
  std::vector<int> bins;
  // Independent <= rows make many fractional branches.
  for (int i = 0; i < 10; ++i) {
    const int v = p.add_variable(-1.0);
    bins.push_back(v);
    p.add_constraint({{{v, 2.0}}, Sense::kLe, 1.0, ""});
  }
  MilpOptions opts;
  opts.max_nodes = 3;
  const MilpResult r = BranchAndBound(opts).solve(p, bins);
  EXPECT_LE(r.nodes, 3);
}

TEST(Milp, ContinuousVariablesStayFractional) {
  // One binary, one continuous: solution keeps the continuous var exact.
  LpProblem p;
  const int b = p.add_variable(-1.0);
  const int t = p.add_variable(1.0);
  p.add_constraint({{{b, 1.0}}, Sense::kLe, 1.0, ""});
  p.add_constraint({{{t, 1.0}, {b, -0.5}}, Sense::kGe, 0.0, ""});  // t >= b/2
  const MilpResult r = BranchAndBound().solve(p, {b});
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(b)], 1.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(t)], 0.5, 1e-9);
}

}  // namespace
}  // namespace sq::solver
