// Tests for the "real engine" memory accounting (paged KV, embeddings on
// the master, OOM detection).
#include <gtest/gtest.h>

#include "hw/paper_clusters.h"
#include "model/registry.h"
#include "sim/memory.h"

namespace sq::sim {
namespace {

using sq::hw::Bitwidth;

ExecutionPlan even_plan(const sq::model::LlmSpec& m, int stages, Bitwidth b) {
  ExecutionPlan p;
  const int per = m.n_layers / stages;
  for (int s = 0; s < stages; ++s) {
    p.stages.push_back(
        {{s}, s * per, s + 1 == stages ? m.n_layers : (s + 1) * per});
  }
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), b);
  return p;
}

TEST(PlanMemory, AccountsAllComponents) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt30B);
  const auto c = sq::hw::paper_cluster(9);  // 4x V100
  const auto p = even_plan(m, 4, Bitwidth::kInt8);
  BatchWorkload w{8, 512, 64, 2048};
  const MemoryReport r = plan_memory(c, m, p, w);
  ASSERT_EQ(r.devices.size(), 4u);
  for (const auto& d : r.devices) {
    EXPECT_GT(d.weights, 0u);
    EXPECT_GT(d.kv_cache, 0u);
    EXPECT_GT(d.activations, 0u);
  }
  // Only the master holds embeddings.
  EXPECT_GT(r.devices[0].embeddings, 0u);
  EXPECT_EQ(r.devices[1].embeddings, 0u);
  EXPECT_FALSE(r.oom);
}

TEST(PlanMemory, WeightBytesMatchBitwidth) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt30B);
  const auto c = sq::hw::paper_cluster(9);
  BatchWorkload w{4, 256, 32, 2048};
  const auto r16 = plan_memory(c, m, even_plan(m, 4, Bitwidth::kFp16), w);
  const auto r4 = plan_memory(c, m, even_plan(m, 4, Bitwidth::kInt4), w);
  EXPECT_NEAR(static_cast<double>(r4.devices[1].weights) /
                  static_cast<double>(r16.devices[1].weights),
              0.25, 0.01);
}

TEST(PlanMemory, KvRoundsUpToPagedBlocks) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  const auto c = sq::hw::paper_cluster(9);
  const auto p = even_plan(m, 4, Bitwidth::kInt8);
  BatchWorkload a{8, 100, 1, 2048};  // ctx 101 -> 7 blocks of 16 = 112 tokens
  const auto ra = plan_memory(c, m, p, a);
  const std::uint64_t expected =
      8 * m.layer_kv_bytes(112, Bitwidth::kFp16) * 10;  // 10 layers per stage
  EXPECT_EQ(ra.devices[0].kv_cache, expected);
}

TEST(PlanMemory, DetectsOom) {
  // OPT-66B at FP16 on a single V100 is far beyond 32 GB.
  const auto m = sq::model::spec(sq::model::ModelId::kOpt66B);
  const auto c = sq::hw::paper_cluster(1);
  const auto p = even_plan(m, 1, Bitwidth::kFp16);
  BatchWorkload w{8, 512, 64, 2048};
  const MemoryReport r = plan_memory(c, m, p, w);
  EXPECT_TRUE(r.oom);
  EXPECT_EQ(r.oom_device, 0);
}

TEST(PlanMemory, TpSplitsWeightsAcrossDevices) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt30B);
  const auto c = sq::hw::paper_cluster(9);
  ExecutionPlan p;
  p.stages.push_back({{0, 1, 2, 3}, 0, m.n_layers});
  p.layer_bits.assign(static_cast<std::size_t>(m.n_layers), Bitwidth::kFp16);
  BatchWorkload w{8, 512, 64, 2048};
  const MemoryReport r = plan_memory(c, m, p, w);
  ASSERT_EQ(r.devices.size(), 4u);
  const auto single = even_plan(m, 1, Bitwidth::kFp16);
  // Per-device share is a quarter of the single-device weight load.
  ExecutionPlan one;
  one.stages.push_back({{0}, 0, m.n_layers});
  one.layer_bits = p.layer_bits;
  const auto r1 = plan_memory(c, m, one, w);
  EXPECT_NEAR(static_cast<double>(r.devices[0].weights),
              static_cast<double>(r1.devices[0].weights) / 4.0,
              static_cast<double>(r1.devices[0].weights) * 0.01);
}

TEST(PlanMemory, KvGrowsWithBatchAndContext) {
  const auto m = sq::model::spec(sq::model::ModelId::kOpt13B);
  const auto c = sq::hw::paper_cluster(9);
  const auto p = even_plan(m, 4, Bitwidth::kInt8);
  const auto kv_at = [&](std::uint64_t b, std::uint64_t s) {
    BatchWorkload w{b, s, 32, 2048};
    return plan_memory(c, m, p, w).devices[0].kv_cache;
  };
  EXPECT_GT(kv_at(16, 512), kv_at(8, 512));
  EXPECT_GT(kv_at(8, 1024), kv_at(8, 512));
}

}  // namespace
}  // namespace sq::sim
