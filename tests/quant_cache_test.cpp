// Tests for the content-addressed quantized-layer cache and the runtime
// WeightPrep hook built on it: hit/miss semantics, key separation per
// quantization knob, bit-identity of cached results against direct QTensor
// construction (deterministic and stochastic), whole-model fan-out stats,
// concurrent access (TSan coverage), and changed-bits-only re-preparation
// after plan repair.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "quant/quant_cache.h"
#include "quant/qtensor.h"
#include "runtime/weight_prep.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sq::quant {
namespace {

using sq::hw::Bitwidth;
using sq::tensor::Tensor;

Tensor random_weights(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  sq::tensor::Rng rng(seed);
  Tensor t(rows, cols);
  for (auto& v : t.data()) v = static_cast<float>(rng.normal()) * 0.1f;
  return t;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

TEST(QuantCache, MissThenHitReturnsSharedTensor) {
  QuantCache cache;
  const Tensor w = random_weights(8, 32, 1);

  bool computed = false;
  const auto first = cache.get_or_quantize(w, Bitwidth::kInt4,
                                           Scheme::kSymmetric,
                                           Rounding::kDeterministic, 16,
                                           /*seed=*/0, &computed);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(computed);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  const auto second = cache.get_or_quantize(w, Bitwidth::kInt4,
                                            Scheme::kSymmetric,
                                            Rounding::kDeterministic, 16,
                                            /*seed=*/0, &computed);
  EXPECT_FALSE(computed);
  EXPECT_EQ(second.get(), first.get());  // Same cached object, not a copy.
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Identical content in a distinct allocation also hits (content-addressed).
  const Tensor copy(w.rows(), w.cols(), w.data());
  const auto third = cache.get_or_quantize(copy, Bitwidth::kInt4,
                                           Scheme::kSymmetric,
                                           Rounding::kDeterministic, 16);
  EXPECT_EQ(third.get(), first.get());
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(QuantCache, EveryKnobSeparatesKeys) {
  QuantCache cache;
  const Tensor w = random_weights(4, 64, 2);
  const Tensor w2 = random_weights(4, 64, 3);

  // Baseline entry, then one variation per knob: each must miss.
  cache.get_or_quantize(w, Bitwidth::kInt4, Scheme::kSymmetric,
                        Rounding::kDeterministic, 16);
  cache.get_or_quantize(w2, Bitwidth::kInt4, Scheme::kSymmetric,
                        Rounding::kDeterministic, 16);  // weights
  cache.get_or_quantize(w, Bitwidth::kInt8, Scheme::kSymmetric,
                        Rounding::kDeterministic, 16);  // bits
  cache.get_or_quantize(w, Bitwidth::kInt4, Scheme::kAsymmetric,
                        Rounding::kDeterministic, 16);  // scheme
  cache.get_or_quantize(w, Bitwidth::kInt4, Scheme::kSymmetric,
                        Rounding::kStochastic, 16, 7);  // rounding
  cache.get_or_quantize(w, Bitwidth::kInt4, Scheme::kSymmetric,
                        Rounding::kDeterministic, 32);  // group size
  cache.get_or_quantize(w, Bitwidth::kInt4, Scheme::kSymmetric,
                        Rounding::kStochastic, 16, 8);  // stochastic seed
  EXPECT_EQ(cache.size(), 7u);
  EXPECT_EQ(cache.hits(), 0u);

  // Deterministic rounding ignores the seed: different seeds, same entry.
  bool computed = true;
  cache.get_or_quantize(w, Bitwidth::kInt4, Scheme::kSymmetric,
                        Rounding::kDeterministic, 16, /*seed=*/99, &computed);
  EXPECT_FALSE(computed);
}

TEST(QuantCache, CachedBitsMatchDirectConstruction) {
  QuantCache cache;
  const Tensor w = random_weights(16, 48, 4);

  const auto det = cache.get_or_quantize(w, Bitwidth::kInt3,
                                         Scheme::kAsymmetric,
                                         Rounding::kDeterministic, 24);
  const QTensor direct(w, Bitwidth::kInt3, Scheme::kAsymmetric,
                       Rounding::kDeterministic, 24);
  EXPECT_TRUE(same_bits(det->dequantize(), direct.dequantize()));
  EXPECT_EQ(det->storage_bytes(), direct.storage_bytes());

  // Stochastic rounding: the cache recreates the rng stream from the seed,
  // so the cached tensor equals a fresh QTensor fed by Rng(seed).
  const std::uint64_t seed = 1234;
  const auto sto = cache.get_or_quantize(w, Bitwidth::kInt4,
                                         Scheme::kSymmetric,
                                         Rounding::kStochastic, 16, seed);
  sq::tensor::Rng rng(seed);
  const QTensor direct_sto(w, Bitwidth::kInt4, Scheme::kSymmetric,
                           Rounding::kStochastic, 16, &rng);
  EXPECT_TRUE(same_bits(sto->dequantize(), direct_sto.dequantize()));
}

TEST(QuantCache, QuantizeModelFansOutAndReuses) {
  QuantCache cache;
  std::vector<Tensor> weights;
  for (std::size_t l = 0; l < 6; ++l) {
    weights.push_back(random_weights(8, 40, 100 + l));
  }
  std::vector<QuantJob> jobs;
  for (const auto& w : weights) {
    QuantJob job;
    job.weights = &w;
    job.bits = Bitwidth::kInt4;
    job.group_size = 20;
    jobs.push_back(job);
  }

  const auto stats = cache.quantize_model(jobs);
  ASSERT_EQ(stats.tensors.size(), jobs.size());
  EXPECT_EQ(stats.layers_quantized, jobs.size());
  EXPECT_EQ(stats.layers_reused, 0u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_NE(stats.tensors[i], nullptr);
    const QTensor direct(weights[i], Bitwidth::kInt4, Scheme::kSymmetric,
                         Rounding::kDeterministic, 20);
    EXPECT_TRUE(same_bits(stats.tensors[i]->dequantize(), direct.dequantize()));
  }

  const auto again = cache.quantize_model(jobs);
  EXPECT_EQ(again.layers_quantized, 0u);
  EXPECT_EQ(again.layers_reused, jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(again.tensors[i].get(), stats.tensors[i].get());
  }
}

TEST(QuantCache, ConcurrentAccessYieldsOneTensorPerKey) {
  QuantCache cache;
  const std::size_t kKeys = 4;
  std::vector<Tensor> weights;
  for (std::size_t k = 0; k < kKeys; ++k) {
    weights.push_back(random_weights(8, 32, 200 + k));
  }

  // Hammer the same handful of keys from many threads; every thread must
  // observe the same cached object per key (first insert wins).
  const std::size_t kThreads = 8;
  std::vector<std::vector<std::shared_ptr<const QTensor>>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 8; ++rep) {
        for (std::size_t k = 0; k < kKeys; ++k) {
          seen[t].push_back(cache.get_or_quantize(
              weights[k], Bitwidth::kInt4, Scheme::kSymmetric,
              Rounding::kDeterministic, 16));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.size(), kKeys);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < seen[t].size(); ++i) {
      EXPECT_EQ(seen[t][i].get(), seen[0][i % kKeys].get());
    }
  }
}

TEST(QuantWeightPrep, PrepareSkipsFp16AndNullLayers) {
  QuantCache::global().clear();
  std::vector<Tensor> weights;
  for (std::size_t l = 0; l < 4; ++l) {
    weights.push_back(random_weights(8, 32, 300 + l));
  }
  const sq::runtime::WeightPrep prep(
      [&](int layer) -> const Tensor* {
        if (layer == 2) return nullptr;  // Layer without real weights.
        return &weights[static_cast<std::size_t>(layer)];
      });

  const std::vector<Bitwidth> bits{Bitwidth::kInt4, Bitwidth::kFp16,
                                   Bitwidth::kInt8, Bitwidth::kInt4};
  const auto stats = prep.prepare(bits);
  EXPECT_EQ(stats.layers_total, 4u);
  // Layer 1 is FP16 (nothing to pack) and layer 2 has no weights: only
  // layers 0 and 3 quantize.
  EXPECT_EQ(stats.layers_quantized, 2u);
  EXPECT_EQ(stats.layers_reused, 0u);

  const auto warm = prep.prepare(bits);
  EXPECT_EQ(warm.layers_quantized, 0u);
  EXPECT_EQ(warm.layers_reused, 2u);
}

TEST(QuantWeightPrep, ReprepareTouchesOnlyChangedBits) {
  QuantCache::global().clear();
  std::vector<Tensor> weights;
  for (std::size_t l = 0; l < 5; ++l) {
    weights.push_back(random_weights(8, 32, 400 + l));
  }
  const sq::runtime::WeightPrep prep(
      [&](int layer) { return &weights[static_cast<std::size_t>(layer)]; });

  const std::vector<Bitwidth> old_bits{Bitwidth::kInt4, Bitwidth::kInt4,
                                       Bitwidth::kInt8, Bitwidth::kFp16,
                                       Bitwidth::kInt4};
  prep.prepare(old_bits);

  // Plan repair changed layer 1 to 8-bit and layer 3 from FP16 to 4-bit;
  // layer 4 changed to FP16 (drops out).  Unchanged layers are not even
  // submitted, so the stats count only the two fresh quantizations.
  const std::vector<Bitwidth> new_bits{Bitwidth::kInt4, Bitwidth::kInt8,
                                       Bitwidth::kInt8, Bitwidth::kInt4,
                                       Bitwidth::kFp16};
  const auto stats = prep.reprepare(old_bits, new_bits);
  EXPECT_EQ(stats.layers_quantized, 2u);
  EXPECT_EQ(stats.layers_reused, 0u);

  // Repairing back to the original assignment changes layers 1, 3 and 4
  // again; layer 3 becomes FP16 (skipped) and layers 1 and 4 return to
  // bitwidths already in the cache — nothing is re-quantized.
  const auto back = prep.reprepare(new_bits, old_bits);
  EXPECT_EQ(back.layers_quantized, 0u);
  EXPECT_EQ(back.layers_reused, 2u);
}

}  // namespace
}  // namespace sq::quant
