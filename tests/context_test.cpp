// Tests for PlanContext: table construction, assignment evaluation,
// plan materialization.
#include <gtest/gtest.h>

#include "core_test_util.h"

namespace sq::core {
namespace {

using testutil::Harness;

sq::sim::BatchWorkload small_batch() { return {8, 512, 32, 2048}; }

TEST(MakeGroups, ExplicitSize) {
  const auto g = make_groups(10, 4);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], (std::pair<int, int>{0, 4}));
  EXPECT_EQ(g[2], (std::pair<int, int>{8, 10}));  // remainder group
}

TEST(MakeGroups, AutoTargetsAtMostSixteen) {
  EXPECT_LE(make_groups(80, 0).size(), 16u);
  EXPECT_EQ(make_groups(12, 0).size(), 12u);  // small models ungrouped
}

TEST(PlanContext, DimensionsAndTables) {
  const Harness h(sq::model::ModelId::kOpt13B, 9, small_batch());
  const PlanContext ctx = h.context(4, 8);
  EXPECT_EQ(ctx.num_groups(), 10);  // 40 layers / group 4
  EXPECT_EQ(ctx.num_stages(), 4);
  EXPECT_EQ(ctx.num_bits(), 4);
  for (int g = 0; g < ctx.num_groups(); ++g) {
    for (int j = 0; j < ctx.num_stages(); ++j) {
      for (int bi = 0; bi < ctx.num_bits(); ++bi) {
        EXPECT_GT(ctx.l_pre(g, j, bi), 0.0);
        EXPECT_GT(ctx.l_dec(g, j, bi), 0.0);
        EXPECT_GT(ctx.mem(g, j, bi), 0.0);
      }
    }
  }
}

TEST(PlanContext, MasterStagePaysEmbeddings) {
  const Harness h(sq::model::ModelId::kOpt13B, 9, small_batch());
  const PlanContext ctx = h.context(4, 8);
  EXPECT_LT(ctx.mem_budget(0), ctx.mem_budget(1));
  EXPECT_GT(ctx.const_pre(0), 0.0);
  EXPECT_EQ(ctx.const_pre(1), 0.0);
}

TEST(PlanContext, PipelineCoefficients) {
  const Harness h(sq::model::ModelId::kOpt13B, 9, small_batch());
  // B=8, eta=4 -> mu_pre=2 -> coeff 1;  xi=8 -> mu_dec=1, n=32 -> 30.
  const PlanContext ctx = h.context(4, 8);
  EXPECT_DOUBLE_EQ(ctx.t_pre_coeff(), 1.0);
  EXPECT_DOUBLE_EQ(ctx.t_dec_coeff(), 30.0);
}

TEST(PlanContext, EvaluateRejectsStructureViolations) {
  const Harness h(sq::model::ModelId::kOpt13B, 9, small_batch());
  const PlanContext ctx = h.context(4, 8);
  const int G = ctx.num_groups();
  std::vector<int> stage(static_cast<std::size_t>(G), 0);
  std::vector<int> bit(static_cast<std::size_t>(G), 1);

  // Non-monotone stages.
  stage[2] = 1;
  stage[3] = 0;
  EXPECT_FALSE(ctx.evaluate(stage, bit).feasible);

  // Anchor violated: group 0 not on stage 0.
  std::fill(stage.begin(), stage.end(), 1);
  EXPECT_FALSE(ctx.evaluate(stage, bit).feasible);
}

TEST(PlanContext, EvaluateRejectsMemoryOverflow) {
  // OPT-30B entirely on one V100 at FP16 cannot fit.
  const Harness h(sq::model::ModelId::kOpt30B, 9, small_batch());
  const PlanContext ctx = h.context(4, 8);
  std::vector<int> stage(static_cast<std::size_t>(ctx.num_groups()), 0);
  std::vector<int> bit(static_cast<std::size_t>(ctx.num_groups()), 0);  // fp16
  EXPECT_FALSE(ctx.evaluate(stage, bit).feasible);
}

TEST(PlanContext, EvaluateComputesStragglerObjective) {
  const Harness h(sq::model::ModelId::kOpt13B, 9, small_batch());
  const PlanContext ctx = h.context(4, 8);
  const int G = ctx.num_groups();
  std::vector<int> stage(static_cast<std::size_t>(G));
  for (int g = 0; g < G; ++g) stage[static_cast<std::size_t>(g)] = g * 4 / G;
  std::vector<int> bit(static_cast<std::size_t>(G), 1);  // int8
  const AssignmentEval ev = ctx.evaluate(stage, bit);
  ASSERT_TRUE(ev.feasible);
  EXPECT_GT(ev.latency_s, 0.0);
  EXPECT_GT(ev.t_pre_max, 0.0);
  EXPECT_GT(ev.t_dec_max, 0.0);
  EXPECT_GT(ev.omega, 0.0);
  EXPECT_NEAR(ev.objective, ev.latency_s + h.inputs.theta * ev.omega, 1e-12);
}

TEST(PlanContext, QualityBudgetEnforced) {
  Harness h(sq::model::ModelId::kOpt13B, 9, small_batch());
  h.inputs.omega_budget = 0.0;  // only FP16 allowed
  const PlanContext ctx = h.context(4, 8);
  const int G = ctx.num_groups();
  std::vector<int> stage(static_cast<std::size_t>(G));
  for (int g = 0; g < G; ++g) stage[static_cast<std::size_t>(g)] = g * 4 / G;
  std::vector<int> int8_bits(static_cast<std::size_t>(G), 1);
  std::vector<int> fp16_bits(static_cast<std::size_t>(G), 0);
  EXPECT_FALSE(ctx.evaluate(stage, int8_bits).feasible);
  EXPECT_TRUE(ctx.evaluate(stage, fp16_bits).feasible);
}

TEST(PlanContext, ToPlanMergesConsecutiveGroups) {
  const Harness h(sq::model::ModelId::kOpt13B, 9, small_batch());
  const PlanContext ctx = h.context(4, 8);
  const int G = ctx.num_groups();
  std::vector<int> stage(static_cast<std::size_t>(G));
  for (int g = 0; g < G; ++g) stage[static_cast<std::size_t>(g)] = g < G / 2 ? 0 : 2;
  std::vector<int> bit(static_cast<std::size_t>(G), 1);
  bit[0] = 0;  // first group fp16
  const auto plan = ctx.to_plan(stage, bit, "test");
  ASSERT_EQ(plan.stages.size(), 2u);  // stage 1 and 3 unused -> dropped
  EXPECT_EQ(plan.stages[0].layer_begin, 0);
  EXPECT_EQ(plan.stages[1].layer_end, h.model.n_layers);
  EXPECT_EQ(plan.layer_bits[0], sq::hw::Bitwidth::kFp16);
  EXPECT_EQ(plan.layer_bits[5], sq::hw::Bitwidth::kInt8);
  EXPECT_EQ(plan.validate(h.model, h.cluster), "");
}

TEST(PlanContext, TpBudgetsScaleWithGroupSize) {
  const Harness h(sq::model::ModelId::kOpt30B, 9, small_batch());
  // TP4 topology: one stage of 4 devices.
  const auto topos = enumerate_topologies(h.cluster, true, 16);
  const Topology* tp4 = nullptr;
  for (const auto& t : topos) {
    if (t.groups.size() == 1 && t.groups[0].devices.size() == 4) tp4 = &t;
  }
  ASSERT_NE(tp4, nullptr);
  const PlanContext ctx(h.inputs, *tp4, 4, 8, 4);
  const PlanContext single = h.context(4, 8);
  EXPECT_GT(ctx.mem_budget(0), 3.0 * single.mem_budget(0));
}

}  // namespace
}  // namespace sq::core
