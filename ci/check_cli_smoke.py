#!/usr/bin/env python3
"""End-to-end smoke of the splitquant_cli binary for the bench-smoke job.

Exercises the user-facing surface the unit tests cannot: flag parsing,
exit codes and the metrics-JSON export contract, on a real binary.  Each
scenario pins the exit code; metrics-producing scenarios also validate the
exported JSON against the splitquant.metrics.v1 schema (top-level keys,
expected counters/spans), so a CLI or exporter regression fails CI even
when the underlying library tests stay green.

Scenarios are sized to finish in seconds (small model, --heuristic, few
requests): this is a smoke, not a benchmark.

Usage: python3 ci/check_cli_smoke.py <path-to-splitquant_cli>
"""
import json
import pathlib
import subprocess
import sys
import tempfile

METRICS_SCHEMA = "splitquant.metrics.v1"

# Flags every scenario shares: a small model planned heuristically over
# a small sampled workload, single-threaded for speed-of-start.
BASE = ["--model", "OPT-1.3B", "--cluster", "7", "--heuristic",
        "--requests", "32", "--batch", "16", "--threads", "1"]


def run(cli, args, want_exit, label):
    proc = subprocess.run([cli, *args], capture_output=True, text=True,
                          timeout=600)
    if proc.returncode != want_exit:
        print(f"FAIL: {label}: exit {proc.returncode}, want {want_exit}\n"
              f"  cmd: {' '.join(args)}\n"
              f"  stdout tail: {proc.stdout[-500:]!r}\n"
              f"  stderr tail: {proc.stderr[-500:]!r}", file=sys.stderr)
        return None
    print(f"ok: {label} (exit {proc.returncode})")
    return proc


def run_rejects(cli, args, label):
    """A malformed-spec scenario: exit 2 with a one-line stderr diagnostic
    (no crash, no stack trace, no silent success).  Returns error count."""
    proc = run(cli, args, 2, label)
    if proc is None:
        return 1
    lines = [ln for ln in proc.stderr.splitlines() if ln.strip()]
    if len(lines) != 1:
        print(f"FAIL: {label}: want exactly one diagnostic line on stderr, "
              f"got {len(lines)}: {proc.stderr!r}", file=sys.stderr)
        return 1
    print(f"ok: {label} diagnostic: {lines[0]}")
    return 0


def check_metrics_json(path, label, want_counters=(), want_spans=()):
    """Validate one exported metrics document; returns error count."""
    errors = 0
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {label}: metrics JSON unreadable: {e}", file=sys.stderr)
        return 1
    if doc.get("schema") != METRICS_SCHEMA:
        print(f"FAIL: {label}: schema {doc.get('schema')!r}, "
              f"want {METRICS_SCHEMA!r}", file=sys.stderr)
        errors += 1
    for key, typ in (("counters", dict), ("gauges", dict),
                     ("histograms", dict), ("spans", list)):
        if not isinstance(doc.get(key), typ):
            print(f"FAIL: {label}: top-level {key!r} missing or not "
                  f"{typ.__name__}", file=sys.stderr)
            errors += 1
    counters = doc.get("counters", {})
    for name in want_counters:
        if name not in counters:
            print(f"FAIL: {label}: counter {name!r} missing "
                  f"(have: {sorted(counters)[:8]}...)", file=sys.stderr)
            errors += 1
    span_names = {s.get("name") for s in doc.get("spans", [])
                  if isinstance(s, dict)}
    for name in want_spans:
        if name not in span_names:
            print(f"FAIL: {label}: no span named {name!r} "
                  f"(have: {sorted(n for n in span_names if n)[:8]})",
                  file=sys.stderr)
            errors += 1
    if not errors:
        print(f"ok: {label} metrics JSON "
              f"({len(counters)} counters, {len(doc.get('spans', []))} spans)")
    return errors


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    cli = sys.argv[1]
    errors = 0
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)

        # 1. Plan-only: the default single-pipeline path.
        if run(cli, BASE, 0, "plan-only") is None:
            errors += 1

        # 2. Serve with metrics export: planner + serving counters and the
        # serving span stream must land in the JSON.
        mpath = tmp / "serve_metrics.json"
        if run(cli, [*BASE, "--serve", "--metrics", str(mpath)], 0,
               "serve+metrics") is None:
            errors += 1
        else:
            errors += check_metrics_json(
                mpath, "serve+metrics",
                want_counters=["planner.candidates.evaluated"])

        # 3. Fault injection with plan repair through the recovery engine.
        if run(cli, [*BASE, "--serve", "--faults", "fail:0@1.0"], 0,
               "serve+faults") is None:
            errors += 1

        # 4. Sharded fleet serving: sharded planner + multi-job scheduler,
        # with the fleet.* metrics surface.
        fpath = tmp / "fleet_metrics.json"
        if run(cli, [*BASE, "--shards", "2", "--serve", "--jobs", "a:8,b:8",
                     "--metrics", str(fpath)], 0, "shards+serve") is None:
            errors += 1
        else:
            errors += check_metrics_json(
                fpath, "shards+serve",
                want_counters=["fleet.jobs.submitted", "fleet.jobs.completed"],
                want_spans=["fleet.job"])

        # 5. Continuous-batching serving with the serve.request.* metrics
        # surface and per-request trace spans.
        cpath = tmp / "continuous_metrics.json"
        if run(cli, [*BASE, "--serve", "--continuous", "--arrivals",
                     "burst:16@0,poisson:8@2x4", "--metrics", str(cpath)],
               0, "serve+continuous") is None:
            errors += 1
        else:
            errors += check_metrics_json(
                cpath, "serve+continuous",
                want_counters=["serve.request.submitted",
                               "serve.request.completed",
                               "serve.request.iterations"],
                want_spans=["serve.request"])

        # 6. Continuous mode under faults with plan repair.
        if run(cli, [*BASE, "--serve", "--continuous", "--faults",
                     "fail:0@5.0"], 0, "continuous+faults") is None:
            errors += 1

        # 6b. Elastic serving: membership timeline + live migration over
        # the continuous scheduler, with the elastic.* metrics surface.
        epath = tmp / "elastic_metrics.json"
        if run(cli, [*BASE, "--serve", "--continuous", "--elastic",
                     "price:T4=0.30@0,join:1xV100@2,leave:node1@4",
                     "--migration", "migrate", "--metrics", str(epath)],
               0, "serve+elastic") is None:
            errors += 1
        else:
            errors += check_metrics_json(
                epath, "serve+elastic",
                want_counters=["elastic.events", "elastic.replans",
                               "serve.request.completed"])

        # 7. Usage errors must exit 2 (not 0, not a crash).
        if run(cli, [*BASE, "--shards", "0"], 2, "bad --shards") is None:
            errors += 1
        if run(cli, [*BASE, "--shards", "2", "--load-plan", "x.plan"], 2,
               "--shards with --load-plan") is None:
            errors += 1
        if run(cli, ["--no-such-flag"], 2, "unknown flag") is None:
            errors += 1

        # 8. Malformed workload/fault specs must exit 2 with a one-line
        # diagnostic naming the offending item — never a crash and never a
        # silently-ignored flag.
        errors += run_rejects(
            cli, [*BASE, "--serve", "--faults", "bogus"], "malformed --faults")
        errors += run_rejects(
            cli, [*BASE, "--serve", "--faults", "fail:1@1 trail"],
            "trailing junk in --faults")
        errors += run_rejects(
            cli, [*BASE, "--shards", "2", "--serve", "--jobs", "a:xx"],
            "malformed --jobs")
        errors += run_rejects(
            cli, [*BASE, "--shards", "2", "--serve", "--jobs", "a:0"],
            "zero-count --jobs")
        errors += run_rejects(
            cli, [*BASE, "--serve", "--continuous", "--arrivals", "gauss:4@0"],
            "malformed --arrivals")
        errors += run_rejects(
            cli, [*BASE, "--serve", "--arrivals", "burst:4@0"],
            "--arrivals without --continuous")
        errors += run_rejects(
            cli, [*BASE, "--continuous"], "--continuous without --serve")
        errors += run_rejects(
            cli, [*BASE, "--serve", "--continuous", "--elastic",
                  "flip:2xT4@1"], "malformed --elastic")
        errors += run_rejects(
            cli, [*BASE, "--serve", "--elastic", "join:1xT4@1"],
            "--elastic without --continuous")
        errors += run_rejects(
            cli, [*BASE, "--serve", "--continuous", "--migration", "teleport"],
            "bad --migration")

    if errors:
        print(f"FAIL: {errors} CLI smoke error(s)", file=sys.stderr)
        return 1
    print("CLI smoke: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
