#!/usr/bin/env python3
"""Compare BENCH_*.json files from a bench run against committed baselines.

Gate rules, keyed purely on field-name conventions (see bench/bench_util.h):

  *_tok_s        simulated throughput — fail if it drops more than
                 --tolerance (default 20%) below the baseline; increases
                 never fail (the baseline just becomes stale and should be
                 refreshed, see EXPERIMENTS.md).  This covers the
                 fault-recovery goodput columns too (*_goodput_tok_s):
                 goodput counts the full simulated wall including lost
                 work, retry backoff and replanning charges, so a drop
                 means recovery got slower or lossier, not just that a
                 kernel slowed down
  *_speedup_x    relative kernel throughput (blocked vs naive, measured in
                 the same run, so machine speed cancels) — same >20%-drop
                 rule as *_tok_s; the committed baselines hold conservative
                 floors, not the measured values, so runner-to-runner
                 variance does not flake the gate
  *_fingerprint  plan/output identity — any change fails (the planner
                 picked a different plan or a kernel changed bits, which
                 must be an intentional, reviewed change accompanied by a
                 baseline refresh)

Everything else (wall-clock seconds, cache hit rates, ppl) is informative
only.  Rows are matched positionally; a row-count or schema change fails.

With --report-only every failure is still printed but the exit code is
always 0 — used by the nightly full-size sweep, where rows intentionally
differ from the smoke baselines and the diff is advisory.

Usage: python3 ci/check_bench_regression.py <run_dir> <baseline_dir>
           [--tolerance 0.2] [--report-only]
"""
import argparse
import json
import pathlib
import sys

SCHEMA = "splitquant.bench.v1"


class BenchFileError(Exception):
    """A bench JSON file that cannot be used: missing, unreadable,
    malformed JSON, or the wrong schema.  Reported as a one-line
    diagnostic and a nonzero exit, never a stack trace."""


def load(path: pathlib.Path) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise BenchFileError(f"{path}: cannot read ({e.strerror or e})")
    except json.JSONDecodeError as e:
        raise BenchFileError(f"{path}: malformed JSON ({e})")
    if not isinstance(doc, dict):
        raise BenchFileError(f"{path}: top level is {type(doc).__name__}, want object")
    if doc.get("schema") != SCHEMA:
        raise BenchFileError(f"{path}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
    return doc


def row_label(row: dict, index: int) -> str:
    keys = [str(row[k])
            for k in ("workload", "cluster", "model", "scenario", "threads")
            if k in row]
    return "/".join(keys) if keys else f"row[{index}]"


def compare(name: str, run: dict, base: dict, tolerance: float) -> list:
    failures = []
    run_rows, base_rows = run.get("rows", []), base.get("rows", [])
    if len(run_rows) != len(base_rows):
        return [f"{name}: row count {len(run_rows)} != baseline {len(base_rows)}"]
    for i, (r, b) in enumerate(zip(run_rows, base_rows)):
        label = row_label(b, i)
        for key, want in b.items():
            if key not in r:
                failures.append(f"{name} {label}: field {key!r} missing from run")
                continue
            got = r[key]
            if key.endswith("_fingerprint") and got != want:
                failures.append(
                    f"{name} {label}: {key} changed {want!r} -> {got!r} "
                    f"(plan changed; refresh ci/baselines if intentional)")
            elif (key.endswith("_tok_s") or key.endswith("_speedup_x")) \
                    and isinstance(want, (int, float)):
                if want > 0 and got < want * (1.0 - tolerance):
                    failures.append(
                        f"{name} {label}: {key} regressed {want:.1f} -> {got:.1f} "
                        f"(>{tolerance:.0%} drop)")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("run_dir", type=pathlib.Path)
    ap.add_argument("baseline_dir", type=pathlib.Path)
    ap.add_argument("--tolerance", type=float, default=0.2)
    ap.add_argument("--report-only", action="store_true",
                    help="print failures but always exit 0 (nightly mode)")
    args = ap.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baseline_dir}", file=sys.stderr)
        return 1
    failures = []
    for base_path in baselines:
        run_path = args.run_dir / base_path.name
        if not run_path.exists():
            failures.append(f"{base_path.name}: not produced by this run")
            continue
        try:
            base, run = load(base_path), load(run_path)
        except BenchFileError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return 1
        file_failures = compare(base_path.name, run, base, args.tolerance)
        failures.extend(file_failures)
        print(f"{base_path.name}: {len(base.get('rows', []))} rows, "
              f"{'OK' if not file_failures else 'FAIL'}")
    for f in failures:
        print(f"FAIL: {f}")
    if failures and args.report_only:
        print(f"report-only: {len(failures)} finding(s), not failing the run")
        return 0
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
