#!/usr/bin/env python3
"""Enforce the line-coverage floor on an lcov tracefile.

The CI coverage leg builds with --coverage, runs the unit test tier,
captures an lcov tracefile and calls this script with the tracefile and
ci/coverage_floor.txt.  The floor is a ratchet: it holds the measured
line coverage of src/ at the level the suite already achieves, so a PR
that adds untested code in bulk fails the leg.  Raise the floor when
coverage improves; never lower it without review.

Tracefile parsing is self-contained (no lcov needed to *check*): an lcov
.info file is a sequence of records, one per source file, where
  SF:<path>   names the source file
  DA:<line>,<hits>   one instrumented line and its execution count
  end_of_record
LH:/LF: summary lines are recomputed from the DA: lines, so tracefiles
from any lcov version (or gcovr --lcov) are accepted.

Usage: python3 ci/check_coverage.py <tracefile.info> <floor_file>
           [--only src/]
"""
import argparse
import pathlib
import sys


def parse_tracefile(path: pathlib.Path, only: str):
    """Return {source_path: (lines_hit, lines_instrumented)}."""
    per_file = {}
    current = None
    hit = total = 0
    try:
        text = path.read_text(errors="replace")
    except OSError as e:
        sys.exit(f"FAIL: {path}: cannot read ({e.strerror or e})")
    for line in text.splitlines():
        if line.startswith("SF:"):
            current = line[3:].strip()
            hit = total = 0
        elif line.startswith("DA:") and current is not None:
            parts = line[3:].split(",")
            if len(parts) >= 2:
                total += 1
                try:
                    if int(parts[1]) > 0:
                        hit += 1
                except ValueError:
                    sys.exit(f"FAIL: {path}: malformed DA record {line!r}")
        elif line.startswith("end_of_record") and current is not None:
            if only in current and total > 0:
                h, t = per_file.get(current, (0, 0))
                per_file[current] = (h + hit, t + total)
            current = None
    return per_file


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("tracefile", type=pathlib.Path)
    ap.add_argument("floor_file", type=pathlib.Path)
    ap.add_argument("--only", default="/src/",
                    help="substring a source path must contain to count "
                         "(default: /src/ — the library, not tests/benches)")
    args = ap.parse_args()

    try:
        floor = float(args.floor_file.read_text().split()[0])
    except (OSError, IndexError, ValueError):
        print(f"FAIL: {args.floor_file}: want a single percentage, "
              f"e.g. '60.0'", file=sys.stderr)
        return 1

    per_file = parse_tracefile(args.tracefile, args.only)
    if not per_file:
        print(f"FAIL: {args.tracefile}: no records matching {args.only!r} "
              f"(wrong tracefile, or capture ran before any test?)",
              file=sys.stderr)
        return 1

    hit = sum(h for h, _ in per_file.values())
    total = sum(t for _, t in per_file.values())
    pct = 100.0 * hit / total

    worst = sorted(per_file.items(), key=lambda kv: kv[1][0] / kv[1][1])[:10]
    print(f"line coverage: {pct:.2f}% ({hit}/{total} lines, "
          f"{len(per_file)} files, floor {floor:.2f}%)")
    print("least-covered files:")
    for path, (h, t) in worst:
        print(f"  {100.0 * h / t:6.2f}%  {h:5}/{t:<5}  {path}")

    if pct < floor:
        print(f"FAIL: line coverage {pct:.2f}% is below the floor "
              f"{floor:.2f}% (ci/coverage_floor.txt)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
