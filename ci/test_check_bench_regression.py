#!/usr/bin/env python3
"""Unit tests for ci/check_bench_regression.py (stdlib only; run by the
bench-smoke CI job before the gate itself, and runnable locally with
`python3 ci/test_check_bench_regression.py`).

The gate runs unattended on every PR, so its failure modes matter as much
as its pass modes: a missing or malformed baseline must produce a one-line
diagnostic and a nonzero exit, never a stack trace that buries the cause.
"""
import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

CHECKER = pathlib.Path(__file__).resolve().parent / "check_bench_regression.py"


def bench_doc(rows):
    return {"bench": "t", "meta": {}, "rows": rows,
            "schema": "splitquant.bench.v1"}


ROW = {"model": "OPT-13B", "serve_tok_s": 100.0, "speed_speedup_x": 2.0,
       "plan_fingerprint": "abcd", "wall_s": 1.0}


class GateTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        tmp = pathlib.Path(self._tmp.name)
        self.base_dir = tmp / "baselines"
        self.run_dir = tmp / "run"
        self.base_dir.mkdir()
        self.run_dir.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, doc, name="BENCH_t.json", raw=None):
        path = directory / name
        path.write_text(raw if raw is not None else json.dumps(doc))
        return path

    def gate(self, *extra):
        return subprocess.run(
            [sys.executable, str(CHECKER), str(self.run_dir),
             str(self.base_dir), *extra],
            capture_output=True, text=True)

    def test_identical_run_passes(self):
        self.write(self.base_dir, bench_doc([ROW]))
        self.write(self.run_dir, bench_doc([ROW]))
        r = self.gate()
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_small_drop_within_tolerance_passes(self):
        self.write(self.base_dir, bench_doc([ROW]))
        self.write(self.run_dir, bench_doc([dict(ROW, serve_tok_s=85.0)]))
        self.assertEqual(self.gate().returncode, 0)

    def test_throughput_regression_fails(self):
        self.write(self.base_dir, bench_doc([ROW]))
        self.write(self.run_dir, bench_doc([dict(ROW, serve_tok_s=50.0)]))
        r = self.gate()
        self.assertEqual(r.returncode, 1)
        self.assertIn("regressed", r.stdout)

    def test_speedup_floor_fails(self):
        self.write(self.base_dir, bench_doc([ROW]))
        self.write(self.run_dir, bench_doc([dict(ROW, speed_speedup_x=1.0)]))
        self.assertEqual(self.gate().returncode, 1)

    def test_fingerprint_change_fails(self):
        self.write(self.base_dir, bench_doc([ROW]))
        self.write(self.run_dir, bench_doc([dict(ROW, plan_fingerprint="ffff")]))
        r = self.gate()
        self.assertEqual(r.returncode, 1)
        self.assertIn("plan changed", r.stdout)

    def test_untracked_fields_are_informative_only(self):
        self.write(self.base_dir, bench_doc([ROW]))
        self.write(self.run_dir, bench_doc([dict(ROW, wall_s=99.0)]))
        self.assertEqual(self.gate().returncode, 0)

    def test_row_count_change_fails(self):
        self.write(self.base_dir, bench_doc([ROW, ROW]))
        self.write(self.run_dir, bench_doc([ROW]))
        self.assertEqual(self.gate().returncode, 1)

    def test_missing_run_file_fails_with_diagnostic(self):
        self.write(self.base_dir, bench_doc([ROW]))
        r = self.gate()
        self.assertEqual(r.returncode, 1)
        self.assertIn("not produced by this run", r.stdout)
        self.assertNotIn("Traceback", r.stderr)

    def test_malformed_baseline_is_one_line_not_a_stack_trace(self):
        self.write(self.base_dir, None, raw="{not json")
        self.write(self.run_dir, bench_doc([ROW]))
        r = self.gate()
        self.assertEqual(r.returncode, 1)
        self.assertIn("malformed JSON", r.stderr)
        self.assertNotIn("Traceback", r.stderr)
        self.assertNotIn("Traceback", r.stdout)

    def test_wrong_schema_is_one_line_not_a_stack_trace(self):
        self.write(self.base_dir, {"schema": "other.v9", "rows": []})
        self.write(self.run_dir, bench_doc([ROW]))
        r = self.gate()
        self.assertEqual(r.returncode, 1)
        self.assertIn("schema", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_non_object_top_level_is_one_line_not_a_stack_trace(self):
        self.write(self.base_dir, None, raw="[1, 2, 3]")
        self.write(self.run_dir, bench_doc([ROW]))
        r = self.gate()
        self.assertEqual(r.returncode, 1)
        self.assertIn("top level", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_empty_baseline_dir_fails(self):
        r = self.gate()
        self.assertEqual(r.returncode, 1)
        self.assertIn("no baselines", r.stderr)

    def test_report_only_always_exits_zero(self):
        self.write(self.base_dir, bench_doc([ROW]))
        self.write(self.run_dir, bench_doc([dict(ROW, serve_tok_s=1.0)]))
        r = self.gate("--report-only")
        self.assertEqual(r.returncode, 0)
        self.assertIn("report-only", r.stdout)


if __name__ == "__main__":
    unittest.main()
