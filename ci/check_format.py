#!/usr/bin/env python3
"""Blocking mechanical format gate for the C++ sources.

clang-format availability varies across environments, so the *blocking* CI
check is this dependency-free script; a clang-format diff against the
committed .clang-format runs as a separate advisory step.  Checks, per file:

  - no tab characters (2-space indentation everywhere)
  - no trailing whitespace
  - no CRLF line endings
  - file ends with exactly one newline
  - lines stay under the hard cap (ColumnLimit + slack for tables/URLs)

Usage: python3 ci/check_format.py [root]
Exit status 1 lists every violation; 0 when clean.
"""
import pathlib
import sys

ROOTS = ("src", "tests", "bench", "examples")
SUFFIXES = {".h", ".cpp", ".cc", ".hpp"}
HARD_LINE_CAP = 100  # .clang-format says 90; allow slack for aligned tables


def check_file(path: pathlib.Path) -> list:
    problems = []
    raw = path.read_bytes()
    if b"\r" in raw:
        problems.append(f"{path}: CRLF line endings")
    if b"\t" in raw:
        first = raw[: raw.index(b"\t")].count(b"\n") + 1
        problems.append(f"{path}:{first}: tab character (use spaces)")
    if raw and not raw.endswith(b"\n"):
        problems.append(f"{path}: missing final newline")
    if raw.endswith(b"\n\n"):
        problems.append(f"{path}: multiple trailing newlines")
    for i, line in enumerate(raw.split(b"\n"), start=1):
        if line != line.rstrip():
            problems.append(f"{path}:{i}: trailing whitespace")
        if len(line) > HARD_LINE_CAP:
            problems.append(f"{path}:{i}: line longer than {HARD_LINE_CAP} chars")
    return problems


def main() -> int:
    repo = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    problems = []
    n_files = 0
    for root in ROOTS:
        for path in sorted((repo / root).rglob("*")):
            if path.suffix in SUFFIXES and path.is_file():
                n_files += 1
                problems.extend(check_file(path))
    for p in problems:
        print(p)
    print(f"checked {n_files} files: "
          f"{'OK' if not problems else f'{len(problems)} problem(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
